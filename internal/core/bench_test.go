package core

import (
	"fmt"
	"testing"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

var benchSchemaOnce = func() *schema.Schema {
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
	)
	keyed, err := s.WithKey("name")
	if err != nil {
		panic(err)
	}
	return keyed
}()

func benchSchema() *schema.Schema { return benchSchemaOnce }

func nameKeyB(name string) tuple.Tuple { return nameKey(name) }

func benchTemporalStore(b *testing.B, entities, versions int) *TemporalStore {
	b.Helper()
	s := NewTemporalStore(benchSchema())
	at := temporal.Chronon(1000)
	for v := 0; v < versions; v++ {
		for e := 0; e < entities; e++ {
			name := fmt.Sprintf("e%04d", e)
			if err := s.Assert(fac(name, fmt.Sprint(v)), temporal.Since(temporal.Chronon(v*100)), at); err != nil {
				b.Fatal(err)
			}
			at++
		}
	}
	return s
}

func BenchmarkTemporalAssert(b *testing.B) {
	s := NewTemporalStore(benchSchema())
	at := temporal.Chronon(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("e%04d", i%500)
		if err := s.Assert(fac(name, "x"), temporal.Since(temporal.Chronon(i)), at); err != nil {
			b.Fatal(err)
		}
		at++
	}
}

func BenchmarkTemporalAsOf(b *testing.B) {
	for _, versions := range []int{4, 16, 64} {
		s := benchTemporalStore(b, 100, versions)
		probe := temporal.Chronon(1000 + 100*versions/2)
		b.Run(fmt.Sprintf("versions=%d", versions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := s.AsOf(probe); len(got) == 0 {
					b.Fatal("empty state")
				}
			}
		})
	}
}

func BenchmarkTemporalHistory(b *testing.B) {
	s := benchTemporalStore(b, 100, 32)
	key := nameKeyB("e0050")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.History(key); len(got) == 0 {
			b.Fatal("empty history")
		}
	}
}

func BenchmarkHistoricalTimeSlice(b *testing.B) {
	s := NewHistoricalStore(benchSchema())
	for e := 0; e < 1000; e++ {
		name := fmt.Sprintf("e%04d", e)
		from := temporal.Chronon(e * 10)
		if err := s.Assert(fac(name, "x"), temporal.Interval{From: from, To: from + 500}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TimeSlice(temporal.Chronon((i % 1000) * 10))
	}
}

func BenchmarkStaticInsertDelete(b *testing.B) {
	s := NewStaticStore(benchSchema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("e%06d", i)
		if err := s.Insert(fac(name, "x")); err != nil {
			b.Fatal(err)
		}
		if err := s.Delete(nameKeyB(name)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJournalOverhead(b *testing.B) {
	// The cost of transactional bracketing on the write path.
	b.Run("without-txn", func(b *testing.B) {
		s := NewTemporalStore(benchSchema())
		at := temporal.Chronon(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("e%03d", i%500)
			if err := s.Assert(fac(name, "x"), temporal.Since(temporal.Chronon(i)), at); err != nil {
				b.Fatal(err)
			}
			at++
		}
	})
	b.Run("with-txn", func(b *testing.B) {
		s := NewTemporalStore(benchSchema())
		at := temporal.Chronon(1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("e%03d", i%500)
			s.BeginTxn()
			if err := s.Assert(fac(name, "x"), temporal.Since(temporal.Chronon(i)), at); err != nil {
				b.Fatal(err)
			}
			s.CommitTxn()
			at++
		}
	})
}
