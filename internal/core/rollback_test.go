package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// Figure 3/4's transaction sequence, applied to any rollback representation.
type rollbackOps interface {
	Insert(t tuple.Tuple, at temporal.Chronon) error
	Delete(key tuple.Tuple, at temporal.Chronon) error
	Replace(key, t tuple.Tuple, at temporal.Chronon) error
	AsOf(t temporal.Chronon) []tuple.Tuple
	Snapshot(temporal.Chronon) []tuple.Tuple
}

// loadFigure4 replays the transactions that produce Figure 4's relation:
//
//	Merrie associate [08/25/77, 12/15/82)
//	Merrie full      [12/15/82, ∞)
//	Tom    associate [12/07/82, ∞)
//	Mike   assistant [01/10/83, 02/25/84)
func loadFigure4(t *testing.T, s rollbackOps) {
	t.Helper()
	steps := []struct {
		name string
		op   func() error
	}{
		{"insert Merrie", func() error { return s.Insert(fac("Merrie", "associate"), d770825) }},
		{"insert Tom", func() error { return s.Insert(fac("Tom", "associate"), d821207) }},
		{"promote Merrie", func() error { return s.Replace(nameKey("Merrie"), fac("Merrie", "full"), d821215) }},
		{"insert Mike", func() error { return s.Insert(fac("Mike", "assistant"), d830110) }},
		{"delete Mike", func() error { return s.Delete(nameKey("Mike"), d840225) }},
	}
	for _, step := range steps {
		if err := step.op(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
	}
}

func TestRollbackFigure4Versions(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	loadFigure4(t, s)
	want := []string{
		fmt.Sprintf("(Merrie, associate) valid=%v trans=[08/25/77, 12/15/82)", temporal.All),
		fmt.Sprintf("(Merrie, full) valid=%v trans=[12/15/82, ∞)", temporal.All),
		fmt.Sprintf("(Mike, assistant) valid=%v trans=[01/10/83, 02/25/84)", temporal.All),
		fmt.Sprintf("(Tom, associate) valid=%v trans=[12/07/82, ∞)", temporal.All),
	}
	var got []Version
	s.Versions(func(v Version) bool { got = append(got, v); return true })
	if !equalStrings(versionSet(got), want) {
		t.Fatalf("Figure 4 mismatch:\n got %v\nwant %v", versionSet(got), want)
	}
}

// The paper's Figure 4 query: Merrie's rank as of 12/10/82 is associate,
// even though she was promoted on 12/01/82 — the database didn't know yet.
func TestRollbackAsOfQuery(t *testing.T) {
	for _, impl := range []struct {
		name string
		s    rollbackOps
	}{
		{"timestamped", NewRollbackStore(facultySchema(t))},
		{"copy", NewCopyRollbackStore(facultySchema(t))},
	} {
		t.Run(impl.name, func(t *testing.T) {
			loadFigure4(t, impl.s)
			rank := ""
			for _, tp := range impl.s.AsOf(d821210) {
				if tp[0].Str() == "Merrie" {
					rank = tp[1].Str()
				}
			}
			if rank != "associate" {
				t.Errorf("Merrie as of 12/10/82 = %q, want associate", rank)
			}
			// After the recording date, the answer flips.
			rank = ""
			for _, tp := range impl.s.AsOf(d821220) {
				if tp[0].Str() == "Merrie" {
					rank = tp[1].Str()
				}
			}
			if rank != "full" {
				t.Errorf("Merrie as of 12/20/82 = %q, want full", rank)
			}
			// Before anything was stored: empty state.
			if got := impl.s.AsOf(temporal.Date(1970, 1, 1)); len(got) != 0 {
				t.Errorf("as of 1970 = %v", got)
			}
			// Mike is gone from the current state but visible historically.
			cur := tupleNames(impl.s.Snapshot(d840301))
			if !equalStrings(cur, []string{"Merrie", "Tom"}) {
				t.Errorf("current state = %v", cur)
			}
			old := tupleNames(impl.s.AsOf(d830110))
			if !equalStrings(old, []string{"Merrie", "Mike", "Tom"}) {
				t.Errorf("as of 01/10/83 = %v", old)
			}
		})
	}
}

func TestRollbackErrors(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	if err := s.Insert(fac("Merrie", "full"), d821201); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(fac("Merrie", "x"), d821205); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate: %v", err)
	}
	if err := s.Delete(nameKey("Ghost"), d821205); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("delete absent: %v", err)
	}
	if err := s.Replace(nameKey("Ghost"), fac("Ghost", "x"), d821205); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("replace absent: %v", err)
	}
	// Transaction time never runs backwards.
	if err := s.Insert(fac("Tom", "associate"), d770825); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("regression: %v", err)
	}
	if err := s.Insert(fac("Tom", "associate"), temporal.Forever); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("infinite commit time: %v", err)
	}
	// Schema violation.
	if err := s.Insert(tuple.New(value.NewInt(1)), d830101); err == nil {
		t.Error("schema violation must be rejected")
	}
}

func TestRollbackReplaceKeyCollision(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	if err := s.Insert(fac("Tom", "associate"), d821201); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(fac("Mike", "assistant"), d821205); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace(nameKey("Tom"), fac("Mike", "full"), d821207); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("collision: %v", err)
	}
	// Nothing was half-applied.
	if got, _ := s.Get(nameKey("Tom")); got[1].Str() != "associate" {
		t.Errorf("Tom = %v", got)
	}
}

// Append-only invariant: closed versions never change again; version count
// never decreases; closed transaction periods are immutable across
// arbitrary further operations.
func TestRollbackAppendOnlyProperty(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	r := rand.New(rand.NewSource(8))
	names := []string{"a", "b", "c", "d", "e"}
	clock := temporal.NewTickingClock(1000)
	frozen := map[string]string{} // version identity -> rendering at close time
	record := func() {
		s.Versions(func(v Version) bool {
			if !v.Current() {
				id := fmt.Sprintf("%v@%v", v.Data, v.Trans.From)
				if prev, ok := frozen[id]; ok {
					if prev != v.String() {
						t.Fatalf("closed version changed: %q -> %q", prev, v.String())
					}
				} else {
					frozen[id] = v.String()
				}
			}
			return true
		})
	}
	prevCount := 0
	for i := 0; i < 500; i++ {
		name := names[r.Intn(len(names))]
		at := clock.Now()
		switch r.Intn(3) {
		case 0:
			_ = s.Insert(fac(name, fmt.Sprint(i)), at)
		case 1:
			_ = s.Delete(nameKey(name), at)
		case 2:
			_ = s.Replace(nameKey(name), fac(name, fmt.Sprint(i)), at)
		}
		if s.VersionCount() < prevCount {
			t.Fatal("version count decreased")
		}
		prevCount = s.VersionCount()
		record()
	}
}

// The timestamped and full-copy representations are semantically
// interchangeable: under a random operation stream, AsOf agrees at every
// past instant.
func TestRollbackRepresentationEquivalence(t *testing.T) {
	ts := NewRollbackStore(facultySchema(t))
	cp := NewCopyRollbackStore(facultySchema(t))
	r := rand.New(rand.NewSource(17))
	names := []string{"a", "b", "c", "d"}
	var commits []temporal.Chronon
	clock := temporal.NewTickingClock(100)
	for i := 0; i < 300; i++ {
		name := names[r.Intn(len(names))]
		at := clock.Now()
		var e1, e2 error
		switch r.Intn(3) {
		case 0:
			tp := fac(name, fmt.Sprint(i))
			e1, e2 = ts.Insert(tp, at), cp.Insert(tp, at)
		case 1:
			e1, e2 = ts.Delete(nameKey(name), at), cp.Delete(nameKey(name), at)
		case 2:
			tp := fac(name, fmt.Sprint(i))
			e1, e2 = ts.Replace(nameKey(name), tp, at), cp.Replace(nameKey(name), tp, at)
		}
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("step %d: error divergence: %v vs %v", i, e1, e2)
		}
		commits = append(commits, at)
	}
	probes := append([]temporal.Chronon{0, 99, temporal.Forever - 1}, commits...)
	for _, at := range probes {
		a, b := tupleSet(ts.AsOf(at)), tupleSet(cp.AsOf(at))
		if !equalStrings(a, b) {
			t.Fatalf("AsOf(%v) diverged:\n timestamped %v\n copy        %v", at, a, b)
		}
	}
	// And the space story: the copy store materializes vastly more tuples.
	if cp.TupleCopies() <= ts.VersionCount() {
		t.Errorf("copy store stored %d tuple copies, timestamped %d versions — expected heavy duplication",
			cp.TupleCopies(), ts.VersionCount())
	}
}

func TestRollbackLinearScanAblationAgrees(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	loadFigure4(t, s)
	indexed := tupleSet(s.AsOf(d830110))
	s.DisableIntervalIndex(true)
	linear := tupleSet(s.AsOf(d830110))
	if !equalStrings(indexed, linear) {
		t.Fatalf("indexed %v vs linear %v", indexed, linear)
	}
}

func TestRollbackInsertDeleteSameInstant(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	at := temporal.Date(1990, 1, 1)
	if err := s.Insert(fac("X", "y"), at); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(nameKey("X"), at); err != nil {
		t.Fatal(err)
	}
	// The version existed for an empty period: invisible at every instant.
	if got := s.AsOf(at); len(got) != 0 {
		t.Errorf("AsOf(at) = %v", got)
	}
	// But the version itself is still recorded (append-only).
	if s.VersionCount() != 1 {
		t.Errorf("VersionCount = %d", s.VersionCount())
	}
}

func TestCopyRollbackStateAccounting(t *testing.T) {
	s := NewCopyRollbackStore(facultySchema(t))
	loadFigure4(t, s)
	if s.StateCount() != 5 {
		t.Errorf("StateCount = %d, want 5", s.StateCount())
	}
	// States: {M}, {M,T}, {M,T}, {M,T,Mk}, {M,T} -> 1+2+2+3+2 = 10 copies.
	if s.TupleCopies() != 10 {
		t.Errorf("TupleCopies = %d, want 10", s.TupleCopies())
	}
	var vs []Version
	s.Versions(func(v Version) bool { vs = append(vs, v); return true })
	if len(vs) != 10 {
		t.Errorf("Versions yielded %d", len(vs))
	}
}

func TestCopyRollbackErrors(t *testing.T) {
	s := NewCopyRollbackStore(facultySchema(t))
	if err := s.Delete(nameKey("Ghost"), d770825); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("delete absent: %v", err)
	}
	if err := s.Insert(fac("A", "x"), d821201); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(fac("A", "y"), d821205); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate: %v", err)
	}
	if err := s.Insert(fac("B", "x"), d770825); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("regression: %v", err)
	}
	if err := s.Insert(tuple.New(value.NewInt(1)), d830101); err == nil {
		t.Error("schema violation must be rejected")
	}
	// A failed transform must not append a state.
	if s.StateCount() != 1 {
		t.Errorf("StateCount = %d, want 1", s.StateCount())
	}
}
