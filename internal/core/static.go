package core

import (
	"tdb/internal/index"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// StaticStore is a conventional snapshot relation (§4.1, Figure 2): it
// models the changing real world by a single state, and every update
// discards the previous state completely. It can answer neither historical
// queries nor rollback queries — TestStaticLimitations demonstrates the
// paper's four inexpressible requests against this type.
//
// StaticStore is not safe for concurrent use; the transaction layer above
// serializes access.
type StaticStore struct {
	sch   *schema.Schema
	rows  []tuple.Tuple // nil entries are free slots
	free  []int
	byKey index.Hash
	j     journal
	verCounter
}

// NewStaticStore creates an empty static relation with the given schema.
func NewStaticStore(sch *schema.Schema) *StaticStore {
	return &StaticStore{sch: sch}
}

// BeginTxn starts collecting undo information (see Transactional).
func (s *StaticStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn.
func (s *StaticStore) CommitTxn() { s.j.commit() }

// AbortTxn reverts mutations since BeginTxn.
func (s *StaticStore) AbortTxn() { s.j.abort() }

// Kind returns Static.
func (s *StaticStore) Kind() Kind { return Static }

// Schema returns the relation schema.
func (s *StaticStore) Schema() *schema.Schema { return s.sch }

// Event returns false: static relations carry no time at all.
func (s *StaticStore) Event() bool { return false }

// Len returns the number of tuples in the current state.
func (s *StaticStore) Len() int { return s.byKey.Len() }

// Insert adds a tuple to the current state. It fails with ErrDuplicateKey
// if a tuple with the same key is present.
func (s *StaticStore) Insert(t tuple.Tuple) error {
	countWrite(Static)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	key := t.Key(s.sch)
	if _, ok := s.lookup(key); ok {
		return ErrDuplicateKey
	}
	pos := s.alloc(t.Clone())
	kh := key.Hash64()
	s.byKey.Add(kh, pos)
	s.j.record(func() {
		s.byKey.Remove(kh, pos)
		s.rows[pos] = nil
		s.free = append(s.free, pos)
	})
	return nil
}

// Delete removes the tuple with the given key; the old state is forgotten.
func (s *StaticStore) Delete(key tuple.Tuple) error {
	countWrite(Static)
	pos, ok := s.lookup(key)
	if !ok {
		return ErrNoSuchTuple
	}
	kh := key.Hash64()
	old := s.rows[pos]
	s.byKey.Remove(kh, pos)
	s.rows[pos] = nil
	s.free = append(s.free, pos)
	s.j.record(func() {
		s.popFree(pos)
		s.rows[pos] = old
		s.byKey.Add(kh, pos)
	})
	return nil
}

// Replace substitutes the tuple with the given key; the old value is
// forgotten (the replacement "takes effect as soon as it is committed" and
// the past is discarded, §4.1).
func (s *StaticStore) Replace(key tuple.Tuple, t tuple.Tuple) error {
	countWrite(Static)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	pos, ok := s.lookup(key)
	if !ok {
		return ErrNoSuchTuple
	}
	newKey := t.Key(s.sch)
	keyChanged := !tuple.Equal(key, newKey)
	if keyChanged {
		if _, exists := s.lookup(newKey); exists {
			return ErrDuplicateKey
		}
		s.byKey.Remove(key.Hash64(), pos)
		s.byKey.Add(newKey.Hash64(), pos)
	}
	old := s.rows[pos]
	s.rows[pos] = t.Clone()
	s.j.record(func() {
		s.rows[pos] = old
		if keyChanged {
			s.byKey.Remove(newKey.Hash64(), pos)
			s.byKey.Add(key.Hash64(), pos)
		}
	})
	return nil
}

// popFree removes pos from the free list; LIFO undo guarantees it is on
// top, but a linear fallback keeps the store safe regardless.
func (s *StaticStore) popFree(pos int) {
	if n := len(s.free); n > 0 && s.free[n-1] == pos {
		s.free = s.free[:n-1]
		return
	}
	for i, p := range s.free {
		if p == pos {
			s.free = append(s.free[:i], s.free[i+1:]...)
			return
		}
	}
}

// Get returns the current tuple with the given key.
func (s *StaticStore) Get(key tuple.Tuple) (tuple.Tuple, bool) {
	countRead(Static)
	pos, ok := s.lookup(key)
	if !ok {
		return nil, false
	}
	return s.rows[pos], true
}

// Scan calls fn for every tuple in the current state, stopping early if fn
// returns false.
func (s *StaticStore) Scan(fn func(tuple.Tuple) bool) {
	countRead(Static)
	s.scan(fn)
}

func (s *StaticStore) scan(fn func(tuple.Tuple) bool) {
	for _, row := range s.rows {
		if row == nil {
			continue
		}
		if !fn(row) {
			return
		}
	}
}

// Versions presents the current state as versions stamped with the
// universal interval on both axes: a static relation carries no time.
func (s *StaticStore) Versions(fn func(Version) bool) {
	countRead(Static)
	s.scan(func(t tuple.Tuple) bool {
		return fn(Version{Data: t, Valid: temporal.All, Trans: temporal.All})
	})
}

// Snapshot returns the current state; now is ignored, since a static
// relation has no other state to offer.
func (s *StaticStore) Snapshot(temporal.Chronon) []tuple.Tuple {
	countRead(Static)
	out := make([]tuple.Tuple, 0, s.Len())
	s.scan(func(t tuple.Tuple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func (s *StaticStore) lookup(key tuple.Tuple) (int, bool) {
	for _, pos := range s.byKey.Lookup(key.Hash64()) {
		if s.rows[pos] != nil && tuple.Equal(s.rows[pos].Key(s.sch), key) {
			return pos, true
		}
	}
	return 0, false
}

func (s *StaticStore) alloc(t tuple.Tuple) int {
	if n := len(s.free); n > 0 {
		pos := s.free[n-1]
		s.free = s.free[:n-1]
		s.rows[pos] = t
		return pos
	}
	s.rows = append(s.rows, t)
	return len(s.rows) - 1
}
