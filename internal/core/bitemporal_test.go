package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// loadFigure8 replays the four conceptual transactions of §4.4 (plus the
// Mike transactions) that produce the temporal relation of Figure 8.
func loadFigure8(t testing.TB, s *TemporalStore) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// 08/25/77: Merrie entered postactively, starting 09/01/77.
	must(s.Assert(fac("Merrie", "associate"), temporal.Since(d770901), d770825))
	// 12/01/82: Tom entered as full, starting 12/05/82 (erroneous).
	must(s.Assert(fac("Tom", "full"), temporal.Since(d821205), d821201))
	// 12/07/82: Tom's rank corrected to associate.
	must(s.Assert(fac("Tom", "associate"), temporal.Since(d821205), d821207))
	// 12/15/82: Merrie's promotion (effective 12/01/82) recorded.
	must(s.Assert(fac("Merrie", "full"), temporal.Since(d821201), d821215))
	// 01/10/83: Mike entered retroactively, starting 01/01/83.
	must(s.Assert(fac("Mike", "assistant"), temporal.Since(d830101), d830110))
	// 02/25/84: Mike's departure (effective 03/01/84) recorded.
	must(s.Retract(nameKey("Mike"), temporal.Since(d840301), d840225))
}

// TestTemporalFigure8Exact verifies the store reproduces Figure 8 row for
// row — the paper's central artifact.
func TestTemporalFigure8Exact(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	loadFigure8(t, s)
	want := []string{
		"(Merrie, associate) valid=[09/01/77, 12/01/82) trans=[12/15/82, ∞)",
		"(Merrie, associate) valid=[09/01/77, ∞) trans=[08/25/77, 12/15/82)",
		"(Merrie, full) valid=[12/01/82, ∞) trans=[12/15/82, ∞)",
		"(Mike, assistant) valid=[01/01/83, 03/01/84) trans=[02/25/84, ∞)",
		"(Mike, assistant) valid=[01/01/83, ∞) trans=[01/10/83, 02/25/84)",
		"(Tom, associate) valid=[12/05/82, ∞) trans=[12/07/82, ∞)",
		"(Tom, full) valid=[12/05/82, ∞) trans=[12/01/82, 12/07/82)",
	}
	var got []Version
	s.Versions(func(v Version) bool { got = append(got, v); return true })
	if len(got) != 7 {
		t.Fatalf("Figure 8 has 7 rows, store has %d:\n%v", len(got), versionSet(got))
	}
	if !equalStrings(versionSet(got), want) {
		t.Fatalf("Figure 8 mismatch:\n got %v\nwant %v", versionSet(got), want)
	}
}

// The §4.4 query pair: Merrie's rank when Tom arrived, as of 12/10/82
// (answer: associate, with the stamps of Figure 8's first row) and as of
// 12/20/82 (answer: full — the promotion had been recorded by then).
func TestTemporalWhenAsOfQuery(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	loadFigure8(t, s)

	queryMerrieWhenTomArrived := func(asOf temporal.Chronon) []Version {
		var out []Version
		// start of Tom's validity as of the rollback instant.
		for _, v := range s.AsOf(asOf) {
			if v.Data[0].Str() != "Tom" {
				continue
			}
			tomStart := v.Valid.Start()
			for _, m := range s.When(temporal.At(tomStart), asOf) {
				if m.Data[0].Str() == "Merrie" {
					out = append(out, m)
				}
			}
		}
		return out
	}

	got := queryMerrieWhenTomArrived(d821210)
	if len(got) != 1 {
		t.Fatalf("as of 12/10/82: %v", got)
	}
	v := got[0]
	if v.Data[1].Str() != "associate" {
		t.Errorf("rank as of 12/10/82 = %v, want associate", v.Data[1])
	}
	if v.Valid != temporal.Since(d770901) {
		t.Errorf("valid = %v, want [09/01/77, ∞)", v.Valid)
	}
	if v.Trans != (temporal.Interval{From: d770825, To: d821215}) {
		t.Errorf("trans = %v, want [08/25/77, 12/15/82)", v.Trans)
	}

	got = queryMerrieWhenTomArrived(d821220)
	if len(got) != 1 {
		t.Fatalf("as of 12/20/82: %v", got)
	}
	if got[0].Data[1].Str() != "full" {
		t.Errorf("rank as of 12/20/82 = %v, want full", got[0].Data[1])
	}
}

// AsOf on a temporal relation yields a historical relation; replaying the
// same transactions into a HistoricalStore at each commit point must give
// exactly the state AsOf reconstructs. This is the paper's "sequence of
// historical states" picture (Figure 7) made executable.
func TestTemporalAsOfEqualsReplayedHistorical(t *testing.T) {
	type txn struct {
		at     temporal.Chronon
		assert bool
		data   tuple.Tuple
		valid  temporal.Interval
		key    tuple.Tuple
	}
	r := rand.New(rand.NewSource(77))
	names := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 30; trial++ {
		var txns []txn
		clock := temporal.Chronon(1000)
		for i := 0; i < 60; i++ {
			clock += temporal.Chronon(1 + r.Intn(5))
			name := names[r.Intn(len(names))]
			from := temporal.Chronon(r.Intn(100))
			valid := temporal.Interval{From: from, To: from + 1 + temporal.Chronon(r.Intn(50))}
			txns = append(txns, txn{
				at:     clock,
				assert: r.Intn(3) > 0,
				data:   fac(name, fmt.Sprint(r.Intn(4))),
				valid:  valid,
				key:    nameKey(name),
			})
		}
		ts := NewTemporalStore(facultySchema(t))
		for _, x := range txns {
			if x.assert {
				if err := ts.Assert(x.data, x.valid, x.at); err != nil {
					t.Fatal(err)
				}
			} else if err := ts.Retract(x.key, x.valid, x.at); err != nil &&
				!errors.Is(err, ErrNoSuchTuple) {
				t.Fatal(err)
			}
		}
		// Probe a rollback at every commit instant (and between).
		for k := 0; k <= len(txns); k++ {
			var asOf temporal.Chronon
			if k == len(txns) {
				asOf = txns[k-1].at + 1
			} else {
				asOf = txns[k].at
			}
			hs := NewHistoricalStore(facultySchema(t))
			for _, x := range txns {
				if x.at > asOf {
					break
				}
				if x.assert {
					if err := hs.Assert(x.data, x.valid); err != nil {
						t.Fatal(err)
					}
				} else if err := hs.Retract(x.key, x.valid); err != nil &&
					!errors.Is(err, ErrNoSuchTuple) {
					t.Fatal(err)
				}
			}
			// Compare time slices at many valid instants: the reconstructed
			// historical state and the replayed one must agree everywhere.
			for probe := temporal.Chronon(0); probe < 160; probe += 7 {
				var fromAsOf []tuple.Tuple
				for _, ver := range ts.AsOf(asOf) {
					if ver.Valid.Contains(probe) {
						fromAsOf = append(fromAsOf, ver.Data)
					}
				}
				a, b := tupleSet(fromAsOf), tupleSet(hs.TimeSlice(probe))
				if !equalStrings(a, b) {
					t.Fatalf("trial %d asOf=%v probe=%v:\n rollback  %v\n replayed  %v",
						trial, asOf, probe, a, b)
				}
			}
		}
	}
}

// Append-only property (§4.4: "temporal relations are append-only"): under
// arbitrary operations, committed versions never mutate except for the
// single allowed transition trans.To: ∞ -> commit chronon, and the store
// only ever grows.
func TestTemporalAppendOnlyProperty(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	r := rand.New(rand.NewSource(55))
	clock := temporal.NewTickingClock(5000)
	names := []string{"a", "b", "c"}
	type snap struct {
		data  string
		valid temporal.Interval
		trans temporal.Interval
	}
	var prev []snap
	for i := 0; i < 400; i++ {
		at := clock.Now()
		name := names[r.Intn(len(names))]
		from := temporal.Chronon(r.Intn(80))
		valid := temporal.Interval{From: from, To: from + 1 + temporal.Chronon(r.Intn(40))}
		if r.Intn(3) > 0 {
			if err := s.Assert(fac(name, fmt.Sprint(i%5)), valid, at); err != nil {
				t.Fatal(err)
			}
		} else if err := s.Retract(nameKey(name), valid, at); err != nil &&
			!errors.Is(err, ErrNoSuchTuple) {
			t.Fatal(err)
		}
		var cur []snap
		s.Versions(func(v Version) bool {
			cur = append(cur, snap{data: v.Data.String(), valid: v.Valid, trans: v.Trans})
			return true
		})
		if len(cur) < len(prev) {
			t.Fatal("store shrank")
		}
		for j, p := range prev {
			c := cur[j]
			if c.data != p.data || c.valid != p.valid || c.trans.From != p.trans.From {
				t.Fatalf("step %d: committed version %d mutated: %+v -> %+v", i, j, p, c)
			}
			if c.trans.To != p.trans.To {
				if p.trans.To != temporal.Forever {
					t.Fatalf("step %d: closed version %d re-closed: %+v -> %+v", i, j, p, c)
				}
				if c.trans.To != at {
					t.Fatalf("step %d: version %d closed at %v, not commit time %v", i, j, c.trans.To, at)
				}
			}
		}
		prev = cur
	}
}

func TestTemporalErrors(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 5, To: 5}, 100); !errors.Is(err, ErrEmptyValidPeriod) {
		t.Errorf("empty valid: %v", err)
	}
	if err := s.Assert(tuple.New(value.NewInt(1)), temporal.Since(0), 100); err == nil {
		t.Error("schema violation must be rejected")
	}
	if err := s.Assert(fac("A", "x"), temporal.Since(0), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Assert(fac("A", "y"), temporal.Since(0), 50); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("regression: %v", err)
	}
	if err := s.Retract(nameKey("Ghost"), temporal.Since(0), 200); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("retract absent: %v", err)
	}
	if err := s.Retract(nameKey("A"), temporal.Interval{From: 9, To: 3}, 200); !errors.Is(err, ErrEmptyValidPeriod) {
		t.Errorf("inverted valid: %v", err)
	}
	if err := s.AssertAt(fac("A", "x"), 10, 300); !errors.Is(err, ErrEventRelation) {
		t.Errorf("AssertAt on interval store: %v", err)
	}
	if err := s.RetractAt(nameKey("A"), 10, 300); !errors.Is(err, ErrEventRelation) {
		t.Errorf("RetractAt on interval store: %v", err)
	}
}

func TestTemporalRetractMiddleSplits(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 10, To: 50}, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Retract(nameKey("A"), temporal.Interval{From: 20, To: 30}, 200); err != nil {
		t.Fatal(err)
	}
	h := s.History(nameKey("A"))
	if len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
	if h[0].Valid != (temporal.Interval{From: 10, To: 20}) ||
		h[1].Valid != (temporal.Interval{From: 30, To: 50}) {
		t.Fatalf("split = %v", h)
	}
	// The original full version remains reachable via rollback.
	old := s.AsOf(150)
	if len(old) != 1 || old[0].Valid != (temporal.Interval{From: 10, To: 50}) {
		t.Fatalf("as of 150 = %v", old)
	}
}

func TestTemporalTimeSlice(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	loadFigure8(t, s)
	// Valid 12/10/82 as of 12/10/82: Merrie associate (promotion not yet
	// recorded), Tom associate (his correction landed on 12/07/82).
	got := map[string]string{}
	for _, tp := range s.TimeSlice(d821210, d821210) {
		got[tp[0].Str()] = tp[1].Str()
	}
	if got["Merrie"] != "associate" || got["Tom"] != "associate" || len(got) != 2 {
		t.Errorf("slice(12/10/82 as of 12/10/82) = %v", got)
	}
	// Valid and as of 12/06/82: Tom's erroneous "full" was still believed.
	d821206 := temporal.Date(1982, 12, 6)
	got = map[string]string{}
	for _, tp := range s.TimeSlice(d821206, d821206) {
		got[tp[0].Str()] = tp[1].Str()
	}
	if got["Merrie"] != "associate" || got["Tom"] != "full" || len(got) != 2 {
		t.Errorf("slice(12/06/82 as of 12/06/82) = %v", got)
	}
	// Same valid instant as of 12/20/82: both corrections visible.
	got = map[string]string{}
	for _, tp := range s.TimeSlice(d821210, d821220) {
		got[tp[0].Str()] = tp[1].Str()
	}
	if got["Merrie"] != "full" || got["Tom"] != "associate" || len(got) != 2 {
		t.Errorf("slice(12/10/82 as of 12/20/82) = %v", got)
	}
}

func TestTemporalSnapshotAndScanHelpers(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	loadFigure8(t, s)
	now := temporal.Date(1985, 3, 1)
	names := tupleNames(s.Snapshot(now))
	if !equalStrings(names, []string{"Merrie", "Tom"}) {
		t.Errorf("snapshot 1985 = %v", names)
	}
	// During Mike's tenure (current belief): three faculty.
	names = tupleNames(s.Snapshot(temporal.Date(1983, 6, 1)))
	if !equalStrings(names, []string{"Merrie", "Mike", "Tom"}) {
		t.Errorf("snapshot mid-83 = %v", names)
	}
}

func TestTemporalLinearScanAblationAgrees(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	loadFigure8(t, s)
	indexed := versionSet(s.AsOf(d821210))
	s.DisableIntervalIndex(true)
	linear := versionSet(s.AsOf(d821210))
	if !equalStrings(indexed, linear) {
		t.Fatalf("indexed %v vs linear %v", indexed, linear)
	}
}

// Figure 9: the temporal event relation 'promotion' with a user-defined
// time attribute (effective date) plus valid (at) and transaction time.
func TestTemporalEventFigure9(t *testing.T) {
	base := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
		schema.Attribute{Name: "effective", Type: value.Instant},
	)
	sch, err := base.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	s := NewTemporalEventStore(sch)
	if !s.Event() {
		t.Fatal("event store must report Event()")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	promo := func(name, rank string, eff temporal.Chronon) tuple.Tuple {
		return tuple.New(value.NewString(name), value.NewString(rank), value.NewInstant(eff))
	}
	d821211 := temporal.Date(1982, 12, 11)
	must(s.AssertAt(promo("Merrie", "associate", d770901), d770825, d770825))
	must(s.AssertAt(promo("Tom", "full", d821205), d821205, d821201))
	must(s.RetractAt(tuple.New(value.NewString("Tom")), d821205, d821207))
	must(s.AssertAt(promo("Tom", "associate", d821205), d821207, d821207))
	must(s.AssertAt(promo("Merrie", "full", d821201), d821211, d821215))
	must(s.AssertAt(promo("Mike", "assistant", d830101), d830101, d830110))
	must(s.AssertAt(promo("Mike", "left", d840301), d840225, d840225))

	var got []Version
	s.Versions(func(v Version) bool { got = append(got, v); return true })
	if len(got) != 6 {
		t.Fatalf("Figure 9 has 6 rows, store has %d", len(got))
	}
	// Check the correction row: Tom full closed at 12/07/82.
	foundClosed := false
	for _, v := range got {
		if v.Data[0].Str() == "Tom" && v.Data[1].Str() == "full" {
			foundClosed = true
			if v.Trans != (temporal.Interval{From: d821201, To: d821207}) {
				t.Errorf("Tom full trans = %v", v.Trans)
			}
			if v.Valid != temporal.At(d821205) {
				t.Errorf("Tom full valid = %v", v.Valid)
			}
		}
	}
	if !foundClosed {
		t.Error("Tom's erroneous promotion must remain as a closed version")
	}
	// Merrie's retroactive promotion: effective 12/01/82 (user-defined),
	// validated 12/11/82, recorded 12/15/82 — three distinct times on one
	// row, the point of Figure 9.
	for _, v := range got {
		if v.Data[0].Str() == "Merrie" && v.Data[1].Str() == "full" {
			if v.Data[2].Instant() != d821201 {
				t.Errorf("effective date = %v", v.Data[2])
			}
			if v.Valid != temporal.At(d821211) {
				t.Errorf("valid at = %v", v.Valid)
			}
			if v.Trans != temporal.Since(d821215) {
				t.Errorf("trans = %v", v.Trans)
			}
		}
	}
	// Event errors.
	if err := s.AssertAt(promo("X", "y", 0), temporal.Forever, temporal.Date(1990, 1, 1)); !errors.Is(err, ErrEmptyValidPeriod) {
		t.Errorf("infinite event: %v", err)
	}
	if err := s.RetractAt(tuple.New(value.NewString("Ghost")), d821205, temporal.Date(1990, 1, 1)); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("retract absent event: %v", err)
	}
}
