package core

import (
	"tdb/internal/index"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// HistoricalStore is a historical relation (§4.3, Figure 6): each tuple
// carries the valid-time period during which it modeled reality, and the
// store records "a single historical state per relation, storing the
// history as it is best known". Corrections physically modify the stored
// history — "previous states are not retained, so it is not possible to
// view the database as it was in the past. There is no record kept of the
// errors that have been corrected."
//
// An event relation variant stores a single valid-time instant per tuple
// rather than a period (the paper's 'promotion' relation, Figure 9, is an
// event relation).
type HistoricalStore struct {
	sch     *schema.Schema
	event   bool
	rows    []histRow
	free    []int
	byKey   index.Hash // key hash -> live positions (all valid periods)
	byValid *index.IntervalTree
	j       journal
	verCounter
}

type histRow struct {
	data  tuple.Tuple
	valid temporal.Interval
	live  bool
}

// NewHistoricalStore creates an empty historical interval relation.
func NewHistoricalStore(sch *schema.Schema) *HistoricalStore {
	return &HistoricalStore{sch: sch, byValid: index.NewIntervalTree()}
}

// NewHistoricalEventStore creates an empty historical event relation: each
// tuple is stamped with a single valid-time instant ("at").
func NewHistoricalEventStore(sch *schema.Schema) *HistoricalStore {
	s := NewHistoricalStore(sch)
	s.event = true
	return s
}

// BeginTxn starts collecting undo information (see Transactional).
func (s *HistoricalStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn.
func (s *HistoricalStore) CommitTxn() { s.j.commit() }

// AbortTxn reverts mutations since BeginTxn.
func (s *HistoricalStore) AbortTxn() { s.j.abort() }

// Kind returns Historical.
func (s *HistoricalStore) Kind() Kind { return Historical }

// Schema returns the relation schema.
func (s *HistoricalStore) Schema() *schema.Schema { return s.sch }

// Event reports whether this is an event relation.
func (s *HistoricalStore) Event() bool { return s.event }

// VersionCount returns the number of live versions.
func (s *HistoricalStore) VersionCount() int { return s.byKey.Len() }

// Assert records that tuple t held throughout the valid period. Any
// existing belief about the same key over an overlapping period is
// corrected: overlapped portions of other versions are cut away and the
// discarded belief is forgotten, exactly as the paper prescribes for
// historical databases. Value-equivalent adjacent periods are coalesced.
func (s *HistoricalStore) Assert(t tuple.Tuple, valid temporal.Interval) error {
	countWrite(Historical)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if valid.IsEmpty() || !valid.IsValid() {
		return ErrEmptyValidPeriod
	}
	if s.event {
		return ErrEventRelation
	}
	key := t.Key(s.sch)
	s.carve(key, valid)
	// Coalesce with value-equivalent neighbours.
	merged := valid
	for _, pos := range append([]int(nil), s.byKey.Lookup(key.Hash64())...) {
		row := s.rows[pos]
		if !row.live || !tuple.Equal(row.data, t) {
			continue
		}
		if u, ok := merged.Union(row.valid); ok {
			merged = u
			s.drop(pos, key)
		}
	}
	s.add(t.Clone(), key, merged)
	return nil
}

// AssertAt records that event tuple t occurred at the given instant. Only
// valid on event relations.
func (s *HistoricalStore) AssertAt(t tuple.Tuple, at temporal.Chronon) error {
	countWrite(Historical)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if !s.event {
		return ErrEventRelation
	}
	if !at.IsFinite() {
		return ErrEmptyValidPeriod
	}
	key := t.Key(s.sch)
	// An entity's event at the same instant is replaced (correction).
	for _, pos := range append([]int(nil), s.byKey.Lookup(key.Hash64())...) {
		row := s.rows[pos]
		if row.live && tuple.Equal(row.data.Key(s.sch), key) && row.valid.From == at {
			s.drop(pos, key)
		}
	}
	s.add(t.Clone(), key, temporal.At(at))
	return nil
}

// Retract removes the belief that any tuple with the given key held during
// the valid period. Versions partially covered are trimmed; versions fully
// covered disappear without trace.
func (s *HistoricalStore) Retract(key tuple.Tuple, valid temporal.Interval) error {
	countWrite(Historical)
	if valid.IsEmpty() || !valid.IsValid() {
		return ErrEmptyValidPeriod
	}
	if n := s.carve(key, valid); n == 0 {
		return ErrNoSuchTuple
	}
	return nil
}

// carve removes the valid period from every version of key, re-adding
// uncovered remainders. It returns the number of versions affected.
func (s *HistoricalStore) carve(key tuple.Tuple, valid temporal.Interval) int {
	affected := 0
	for _, pos := range append([]int(nil), s.byKey.Lookup(key.Hash64())...) {
		row := s.rows[pos]
		if !row.live || !tuple.Equal(row.data.Key(s.sch), key) {
			continue
		}
		if !row.valid.Overlaps(valid) {
			continue
		}
		affected++
		s.drop(pos, key)
		for _, rem := range row.valid.Subtract(valid) {
			s.add(row.data, key, rem)
		}
	}
	return affected
}

// TimeSlice returns the tuples believed valid at instant t — the historical
// database "always views tuples valid at some moment as of now" (§4.4).
func (s *HistoricalStore) TimeSlice(t temporal.Chronon) []tuple.Tuple {
	countRead(Historical)
	var out []tuple.Tuple
	s.byValid.Stab(t, func(_ temporal.Interval, pos int) bool {
		if s.rows[pos].live {
			out = append(out, s.rows[pos].data)
		}
		return true
	})
	return out
}

// When returns the versions whose valid period overlaps the query interval,
// with their valid stamps — the primitive behind TQuel's when clause.
func (s *HistoricalStore) When(q temporal.Interval) []Version {
	countRead(Historical)
	var out []Version
	s.byValid.Overlapping(q, func(iv temporal.Interval, pos int) bool {
		if s.rows[pos].live {
			out = append(out, Version{Data: s.rows[pos].data, Valid: iv, Trans: temporal.All})
		}
		return true
	})
	return out
}

// History returns all live versions for the given key in valid-time order.
func (s *HistoricalStore) History(key tuple.Tuple) []Version {
	countRead(Historical)
	var out []Version
	for _, pos := range s.byKey.Lookup(key.Hash64()) {
		row := s.rows[pos]
		if row.live && tuple.Equal(row.data.Key(s.sch), key) {
			out = append(out, Version{Data: row.data, Valid: row.valid, Trans: temporal.All})
		}
	}
	sortVersionsByValid(out)
	return out
}

// Versions yields every live version with its valid period; transaction
// time is reported as the universal interval since the kind does not model
// it.
func (s *HistoricalStore) Versions(fn func(Version) bool) {
	for _, row := range s.rows {
		if !row.live {
			continue
		}
		if !fn(Version{Data: row.data, Valid: row.valid, Trans: temporal.All}) {
			return
		}
	}
}

// Snapshot returns the tuples believed valid at now.
func (s *HistoricalStore) Snapshot(now temporal.Chronon) []tuple.Tuple {
	return s.TimeSlice(now)
}

func (s *HistoricalStore) add(t, key tuple.Tuple, valid temporal.Interval) {
	var pos int
	if n := len(s.free); n > 0 {
		pos = s.free[n-1]
		s.free = s.free[:n-1]
		s.rows[pos] = histRow{data: t, valid: valid, live: true}
	} else {
		s.rows = append(s.rows, histRow{data: t, valid: valid, live: true})
		pos = len(s.rows) - 1
	}
	kh := key.Hash64()
	s.byKey.Add(kh, pos)
	s.byValid.Insert(valid, pos)
	s.j.record(func() {
		s.byValid.Remove(valid, pos)
		s.byKey.Remove(kh, pos)
		s.rows[pos] = histRow{}
		s.free = append(s.free, pos)
	})
}

func (s *HistoricalStore) drop(pos int, key tuple.Tuple) {
	row := s.rows[pos]
	kh := key.Hash64()
	s.byKey.Remove(kh, pos)
	s.byValid.Remove(row.valid, pos)
	s.rows[pos].live = false
	s.rows[pos].data = nil
	s.free = append(s.free, pos)
	s.j.record(func() {
		s.popFree(pos)
		s.rows[pos] = row
		s.byKey.Add(kh, pos)
		s.byValid.Insert(row.valid, pos)
	})
}

// popFree removes pos from the free list (LIFO undo puts it on top).
func (s *HistoricalStore) popFree(pos int) {
	if n := len(s.free); n > 0 && s.free[n-1] == pos {
		s.free = s.free[:n-1]
		return
	}
	for i, p := range s.free {
		if p == pos {
			s.free = append(s.free[:i], s.free[i+1:]...)
			return
		}
	}
}

func sortVersionsByValid(vs []Version) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0; j-- {
			if vs[j].Valid.From < vs[j-1].Valid.From {
				vs[j], vs[j-1] = vs[j-1], vs[j]
			} else {
				break
			}
		}
	}
}
