package core

import (
	"fmt"

	"tdb/internal/index"
	"tdb/internal/schema"
	"tdb/internal/segment"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// TemporalStore is a temporal (bitemporal) relation (§4.4, Figure 8): every
// version carries both a valid-time period and a transaction-time period,
// making it possible "to view tuples valid at some moment seen as of some
// other moment, completely capturing the history of retroactive/postactive
// changes".
//
// The store is append-only: "each transaction causes a new historical state
// to be created; hence, temporal relations are append-only". A correction
// closes the transaction-time end of superseded versions and appends
// replacements; nothing committed is ever modified or removed, which the
// property tests TestTemporalAppendOnly* verify.
//
// Storage is a segment.Log: committed history seals into immutable columnar
// segments with zone maps (pruned scans), while recent versions stay in a
// mutable row-format tail. Global positions are stable across seals, so the
// key and interval indexes work unchanged.
type TemporalStore struct {
	sch        *schema.Schema
	event      bool
	log        *segment.Log
	byKey      index.Hash // key hash -> positions of *current* versions
	byTrans    *index.IntervalTree
	lastCommit temporal.Chronon
	useIndex   bool
	j          journal
	verCounter
}

// NewTemporalStore creates an empty temporal interval relation.
func NewTemporalStore(sch *schema.Schema) *TemporalStore {
	return &TemporalStore{
		sch:        sch,
		log:        segment.NewLog(sch),
		byTrans:    index.NewIntervalTree(),
		lastCommit: temporal.Beginning,
		useIndex:   true,
	}
}

// NewTemporalEventStore creates an empty temporal event relation (a single
// valid-time instant per tuple, like Figure 9's 'promotion' relation).
func NewTemporalEventStore(sch *schema.Schema) *TemporalStore {
	s := NewTemporalStore(sch)
	s.event = true
	return s
}

// DisableIntervalIndex switches AsOf to a linear scan for the ablation
// benchmarks; the index is still maintained. With segments enabled the
// "linear" scan is the zone-mapped segment scan — the (index off, segments
// on) arm measures zone maps alone.
func (s *TemporalStore) DisableIntervalIndex(disabled bool) { s.useIndex = !disabled }

// DisableSegments switches tail sealing off (the flat-path ablation).
func (s *TemporalStore) DisableSegments(disabled bool) { s.log.SetDisabled(disabled) }

// SegmentsDisabled reports whether the flat path is active.
func (s *TemporalStore) SegmentsDisabled() bool { return s.log.Disabled() }

// SetSegmentRows overrides the tail size that triggers a seal at commit.
func (s *TemporalStore) SetSegmentRows(n int) { s.log.SetSealRows(n) }

// SegmentStats summarizes the store's segmentation.
func (s *TemporalStore) SegmentStats() segment.Stats { return s.log.Stats() }

// Segments exposes the sealed segments for checkpoint encoding.
func (s *TemporalStore) Segments() []*segment.Segment { return s.log.Segments() }

// ScanTailVersions yields the versions not yet sealed, in commit order.
func (s *TemporalStore) ScanTailVersions(fn func(Version) bool) {
	s.log.ScanTail(func(_ int, r segment.Row) bool {
		return fn(Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
	})
}

// BeginTxn starts collecting undo information (see Transactional).
func (s *TemporalStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn. With the journal emptied the
// tail holds only committed versions, so this is the one safe moment to seal
// it into a columnar segment.
func (s *TemporalStore) CommitTxn() {
	s.j.commit()
	s.log.Seal()
}

// AbortTxn reverts mutations since BeginTxn; an aborted transaction never
// committed, so removing its versions does not break append-only-ness. The
// undo closures only ever truncate tail rows: sealing is fenced to commit
// boundaries, so an abort cannot tear rows out of a sealed segment.
func (s *TemporalStore) AbortTxn() { s.j.abort() }

// Kind returns Temporal.
func (s *TemporalStore) Kind() Kind { return Temporal }

// Schema returns the relation schema.
func (s *TemporalStore) Schema() *schema.Schema { return s.sch }

// Event reports whether this is an event relation.
func (s *TemporalStore) Event() bool { return s.event }

// VersionCount returns the total number of stored versions, current and
// superseded.
func (s *TemporalStore) VersionCount() int { return s.log.Len() }

// LastCommit returns the latest commit chronon applied.
func (s *TemporalStore) LastCommit() temporal.Chronon { return s.lastCommit }

// Assert records, at commit time at, the belief that tuple t held
// throughout the valid period. Current versions of the same key whose valid
// periods overlap are superseded: their transaction time is closed, their
// non-overlapped valid-time remainders are re-appended as current versions,
// and the new content is appended. Only valid on interval relations.
func (s *TemporalStore) Assert(t tuple.Tuple, valid temporal.Interval, at temporal.Chronon) error {
	countWrite(Temporal)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if s.event {
		return ErrEventRelation
	}
	if valid.IsEmpty() || !valid.IsValid() {
		return ErrEmptyValidPeriod
	}
	if err := s.admit(at); err != nil {
		return err
	}
	key := t.Key(s.sch)
	s.supersede(key, valid, at)
	s.append(t.Clone(), key, valid, at)
	return nil
}

// Retract records, at commit time at, that no tuple with the given key held
// during the valid period. It fails with ErrNoSuchTuple when current belief
// contains nothing to retract.
func (s *TemporalStore) Retract(key tuple.Tuple, valid temporal.Interval, at temporal.Chronon) error {
	countWrite(Temporal)
	if valid.IsEmpty() || !valid.IsValid() {
		return ErrEmptyValidPeriod
	}
	if err := s.admit(at); err != nil {
		return err
	}
	if n := s.supersede(key, valid, at); n == 0 {
		return ErrNoSuchTuple
	}
	return nil
}

// AssertAt records, at commit time at, that event tuple t occurred at
// instant validAt. Events accumulate; correcting one requires RetractAt.
// Only valid on event relations.
func (s *TemporalStore) AssertAt(t tuple.Tuple, validAt, at temporal.Chronon) error {
	countWrite(Temporal)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if !s.event {
		return ErrEventRelation
	}
	if !validAt.IsFinite() {
		return ErrEmptyValidPeriod
	}
	if err := s.admit(at); err != nil {
		return err
	}
	s.append(t.Clone(), t.Key(s.sch), temporal.At(validAt), at)
	return nil
}

// RetractAt supersedes, at commit time at, the current event versions of
// key occurring at instant validAt (Figure 9's correction of Tom's
// erroneous 'full' promotion). Only valid on event relations.
func (s *TemporalStore) RetractAt(key tuple.Tuple, validAt, at temporal.Chronon) error {
	countWrite(Temporal)
	if !s.event {
		return ErrEventRelation
	}
	if err := s.admit(at); err != nil {
		return err
	}
	n := 0
	kh := key.Hash64()
	for _, pos := range append([]int(nil), s.byKey.Lookup(kh)...) {
		row := s.log.Row(pos)
		if row.Trans.To != temporal.Forever ||
			row.Valid.From != validAt ||
			!tuple.Equal(row.Data.Key(s.sch), key) {
			continue
		}
		s.closeRow(pos, kh, at)
		n++
	}
	if n == 0 {
		return ErrNoSuchTuple
	}
	return nil
}

// supersede closes every current version of key whose valid period overlaps
// valid, re-appending the uncovered remainders as fresh current versions.
// It returns the number of versions superseded.
func (s *TemporalStore) supersede(key tuple.Tuple, valid temporal.Interval, at temporal.Chronon) int {
	n := 0
	kh := key.Hash64()
	for _, pos := range append([]int(nil), s.byKey.Lookup(kh)...) {
		row := s.log.Row(pos) // materialized copy: the log may grow below
		if row.Trans.To != temporal.Forever ||
			!row.Valid.Overlaps(valid) ||
			!tuple.Equal(row.Data.Key(s.sch), key) {
			continue
		}
		n++
		s.closeRow(pos, kh, at)
		for _, rem := range row.Valid.Subtract(valid) {
			s.append(row.Data, key, rem, at)
		}
	}
	return n
}

// AsOf performs the rollback operation, returning the historical state that
// was current at transaction time t: every version asserted by then and not
// yet superseded, stamped with its valid period. The result of rollback on
// a temporal relation is a historical relation (§4.4). With the interval
// index disabled the scan walks the segments, skipping any whose
// transaction-time zone map excludes t.
func (s *TemporalStore) AsOf(t temporal.Chronon) []Version {
	return s.AsOfFiltered(t, nil)
}

// AsOfFiltered is AsOf with optional comparison pre-filters evaluated on the
// segment columns — on the indexed path, per stabbed position — before any
// tuple is materialized. Filters are an acceleration only (callers re-verify
// the originating predicate), so nil filters yield the same rows.
func (s *TemporalStore) AsOfFiltered(t temporal.Chronon, filters []*segment.Filter) []Version {
	countRead(Temporal)
	var out []Version
	if s.useIndex {
		s.byTrans.Stab(t, func(_ temporal.Interval, pos int) bool {
			if !s.log.Match(pos, filters) {
				return true
			}
			row := s.log.Row(pos)
			out = append(out, Version{Data: row.Data, Valid: row.Valid, Trans: row.Trans})
			return true
		})
		return out
	}
	s.log.ScanAsOf(t, filters, func(_ int, r segment.Row) bool {
		out = append(out, Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
		return true
	})
	return out
}

// During returns every version that belonged to some believed state during
// the transaction-time window (TQuel's "as of E1 through E2").
func (s *TemporalStore) During(window temporal.Interval) []Version {
	countRead(Temporal)
	var out []Version
	if s.useIndex {
		s.byTrans.Overlapping(window, func(iv temporal.Interval, pos int) bool {
			row := s.log.Row(pos)
			out = append(out, Version{Data: row.Data, Valid: row.Valid, Trans: iv})
			return true
		})
		return out
	}
	s.log.ScanTransOverlap(window, func(_ int, r segment.Row) bool {
		out = append(out, Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
		return true
	})
	return out
}

// TimeSlice answers the fully bitemporal point query: the tuples valid at
// instant v according to the database state as of transaction time asOf.
func (s *TemporalStore) TimeSlice(v, asOf temporal.Chronon) []tuple.Tuple {
	countRead(Temporal)
	var out []tuple.Tuple
	s.log.ScanWhen(temporal.At(v), asOf, nil, func(_ int, r segment.Row) bool {
		out = append(out, r.Data)
		return true
	})
	return out
}

// When returns the versions current as of asOf whose valid period overlaps
// q — the primitive behind TQuel's combined when + as of query in §4.4. The
// scan prunes segments on both time axes via their zone maps.
func (s *TemporalStore) When(q temporal.Interval, asOf temporal.Chronon) []Version {
	return s.WhenFiltered(q, asOf, nil)
}

// WhenFiltered is When with optional equality pre-filters evaluated on the
// segment columns before materialization. Filters are an acceleration only —
// the planner re-applies the originating predicate on every returned
// version — so passing nil and filtering afterwards yields the same rows.
func (s *TemporalStore) WhenFiltered(q temporal.Interval, asOf temporal.Chronon, filters []*segment.Filter) []Version {
	countRead(Temporal)
	var out []Version
	s.log.ScanWhen(q, asOf, filters, func(_ int, r segment.Row) bool {
		out = append(out, Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
		return true
	})
	return out
}

// History returns the currently believed versions for key in valid order.
func (s *TemporalStore) History(key tuple.Tuple) []Version {
	countRead(Temporal)
	var out []Version
	for _, pos := range s.byKey.Lookup(key.Hash64()) {
		row := s.log.Row(pos)
		if row.Trans.To == temporal.Forever && tuple.Equal(row.Data.Key(s.sch), key) {
			out = append(out, Version{Data: row.Data, Valid: row.Valid, Trans: row.Trans})
		}
	}
	sortVersionsByValid(out)
	return out
}

// ScanKey yields every stored version (current and superseded) whose key
// hash matches, in commit order — the audit-trail primitive. Sealed segments
// whose bloom filter excludes the hash are skipped without reading a row.
// Callers must still compare the key projection: hashes can collide.
func (s *TemporalStore) ScanKey(kh uint64, fn func(Version) bool) {
	countRead(Temporal)
	s.log.ScanKey(kh, func(_ int, r segment.Row) bool {
		return fn(Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
	})
}

// RestoreVersion reloads one stored version verbatim, including superseded
// ones. It exists solely for checkpoint recovery: the version's periods are
// taken as recorded, bypassing the update algebra. Restored tails seal on
// the same threshold as live commits.
func (s *TemporalStore) RestoreVersion(v Version) error {
	if err := validate(s.sch, v.Data); err != nil {
		return err
	}
	if !v.Trans.IsValid() || !v.Trans.From.IsFinite() {
		return fmt.Errorf("core: restoring version with malformed transaction period %v", v.Trans)
	}
	if !v.Valid.IsValid() {
		return fmt.Errorf("core: restoring version with malformed valid period %v", v.Valid)
	}
	if s.event {
		if d, ok := v.Valid.Duration(); !ok || d != 1 {
			return fmt.Errorf("core: restoring non-event period %v into event relation", v.Valid)
		}
	}
	key := v.Data.Key(s.sch)
	pos := s.log.Append(segment.Row{Data: v.Data.Clone(), Valid: v.Valid, Trans: v.Trans, KeyHash: key.Hash64()})
	if v.Trans.To == temporal.Forever {
		s.byKey.Add(key.Hash64(), pos)
	}
	s.byTrans.Insert(v.Trans, pos)
	if v.Trans.From > s.lastCommit {
		s.lastCommit = v.Trans.From
	}
	if v.Trans.To.IsFinite() && v.Trans.To > s.lastCommit {
		s.lastCommit = v.Trans.To
	}
	s.log.Seal()
	return nil
}

// RestoreSegment reattaches a checkpoint segment block and indexes its rows.
// Blocks arrive in position order before any row-wise tail versions.
func (s *TemporalStore) RestoreSegment(g *segment.Segment) error {
	if err := s.log.RestoreSegment(g); err != nil {
		return err
	}
	s.indexRestored(g)
	return nil
}

func (s *TemporalStore) indexRestored(g *segment.Segment) {
	for i := 0; i < g.Len(); i++ {
		pos := g.Start() + i
		tr := s.log.Trans(pos)
		s.byTrans.Insert(tr, pos)
		if tr.To == temporal.Forever {
			s.byKey.Add(s.log.KeyHash(pos), pos)
		}
		if tr.From > s.lastCommit {
			s.lastCommit = tr.From
		}
		if tr.To.IsFinite() && tr.To > s.lastCommit {
			s.lastCommit = tr.To
		}
	}
}

// Versions yields every stored version in commit order.
func (s *TemporalStore) Versions(fn func(Version) bool) {
	s.log.Scan(func(_ int, r segment.Row) bool {
		return fn(Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
	})
}

// Snapshot returns the tuples believed (as of now) to be valid at now.
func (s *TemporalStore) Snapshot(now temporal.Chronon) []tuple.Tuple {
	var out []tuple.Tuple
	s.log.ScanCurrent(nil, func(_ int, r segment.Row) bool {
		if r.Valid.Contains(now) {
			out = append(out, r.Data)
		}
		return true
	})
	return out
}

func (s *TemporalStore) admit(at temporal.Chronon) error {
	if at < s.lastCommit || !at.IsFinite() {
		return ErrTimeRegression
	}
	prev := s.lastCommit
	s.lastCommit = at
	s.j.record(func() { s.lastCommit = prev })
	return nil
}

func (s *TemporalStore) append(t, key tuple.Tuple, valid temporal.Interval, at temporal.Chronon) {
	iv := temporal.Since(at)
	kh := key.Hash64()
	pos := s.log.Append(segment.Row{Data: t, Valid: valid, Trans: iv, KeyHash: kh})
	s.byKey.Add(kh, pos)
	s.byTrans.Insert(iv, pos)
	s.j.record(func() {
		s.byTrans.Remove(iv, pos)
		s.byKey.Remove(kh, pos)
		s.log.TruncateTail(pos) // LIFO undo: pos is the last row
	})
}

// closeRow supersedes a current version: its transaction-time end becomes
// the commit chronon and it leaves the current-version key index.
func (s *TemporalStore) closeRow(pos int, keyHash uint64, at temporal.Chronon) {
	old := s.log.Trans(pos)
	closed := temporal.Interval{From: old.From, To: at}
	s.log.CloseTrans(pos, at)
	s.byTrans.Update(old, pos, closed)
	s.byKey.Remove(keyHash, pos)
	s.j.record(func() {
		s.byKey.Add(keyHash, pos)
		s.byTrans.Update(closed, pos, old)
		s.log.CloseTrans(pos, old.To)
	})
}
