package core

import (
	"fmt"

	"tdb/internal/index"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// TemporalStore is a temporal (bitemporal) relation (§4.4, Figure 8): every
// version carries both a valid-time period and a transaction-time period,
// making it possible "to view tuples valid at some moment seen as of some
// other moment, completely capturing the history of retroactive/postactive
// changes".
//
// The store is append-only: "each transaction causes a new historical state
// to be created; hence, temporal relations are append-only". A correction
// closes the transaction-time end of superseded versions and appends
// replacements; nothing committed is ever modified or removed, which the
// property tests TestTemporalAppendOnly* verify.
type TemporalStore struct {
	sch        *schema.Schema
	event      bool
	rows       []btRow
	byKey      index.Hash // key hash -> positions of *current* versions
	byTrans    *index.IntervalTree
	lastCommit temporal.Chronon
	useIndex   bool
	j          journal
	verCounter
}

type btRow struct {
	data  tuple.Tuple
	valid temporal.Interval
	trans temporal.Interval
}

// NewTemporalStore creates an empty temporal interval relation.
func NewTemporalStore(sch *schema.Schema) *TemporalStore {
	return &TemporalStore{
		sch:        sch,
		byTrans:    index.NewIntervalTree(),
		lastCommit: temporal.Beginning,
		useIndex:   true,
	}
}

// NewTemporalEventStore creates an empty temporal event relation (a single
// valid-time instant per tuple, like Figure 9's 'promotion' relation).
func NewTemporalEventStore(sch *schema.Schema) *TemporalStore {
	s := NewTemporalStore(sch)
	s.event = true
	return s
}

// DisableIntervalIndex switches AsOf to a linear scan for the ablation
// benchmarks; the index is still maintained.
func (s *TemporalStore) DisableIntervalIndex(disabled bool) { s.useIndex = !disabled }

// BeginTxn starts collecting undo information (see Transactional).
func (s *TemporalStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn.
func (s *TemporalStore) CommitTxn() { s.j.commit() }

// AbortTxn reverts mutations since BeginTxn; an aborted transaction never
// committed, so removing its versions does not break append-only-ness.
func (s *TemporalStore) AbortTxn() { s.j.abort() }

// Kind returns Temporal.
func (s *TemporalStore) Kind() Kind { return Temporal }

// Schema returns the relation schema.
func (s *TemporalStore) Schema() *schema.Schema { return s.sch }

// Event reports whether this is an event relation.
func (s *TemporalStore) Event() bool { return s.event }

// VersionCount returns the total number of stored versions, current and
// superseded.
func (s *TemporalStore) VersionCount() int { return len(s.rows) }

// LastCommit returns the latest commit chronon applied.
func (s *TemporalStore) LastCommit() temporal.Chronon { return s.lastCommit }

// Assert records, at commit time at, the belief that tuple t held
// throughout the valid period. Current versions of the same key whose valid
// periods overlap are superseded: their transaction time is closed, their
// non-overlapped valid-time remainders are re-appended as current versions,
// and the new content is appended. Only valid on interval relations.
func (s *TemporalStore) Assert(t tuple.Tuple, valid temporal.Interval, at temporal.Chronon) error {
	countWrite(Temporal)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if s.event {
		return ErrEventRelation
	}
	if valid.IsEmpty() || !valid.IsValid() {
		return ErrEmptyValidPeriod
	}
	if err := s.admit(at); err != nil {
		return err
	}
	key := t.Key(s.sch)
	s.supersede(key, valid, at)
	s.append(t.Clone(), key, valid, at)
	return nil
}

// Retract records, at commit time at, that no tuple with the given key held
// during the valid period. It fails with ErrNoSuchTuple when current belief
// contains nothing to retract.
func (s *TemporalStore) Retract(key tuple.Tuple, valid temporal.Interval, at temporal.Chronon) error {
	countWrite(Temporal)
	if valid.IsEmpty() || !valid.IsValid() {
		return ErrEmptyValidPeriod
	}
	if err := s.admit(at); err != nil {
		return err
	}
	if n := s.supersede(key, valid, at); n == 0 {
		return ErrNoSuchTuple
	}
	return nil
}

// AssertAt records, at commit time at, that event tuple t occurred at
// instant validAt. Events accumulate; correcting one requires RetractAt.
// Only valid on event relations.
func (s *TemporalStore) AssertAt(t tuple.Tuple, validAt, at temporal.Chronon) error {
	countWrite(Temporal)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if !s.event {
		return ErrEventRelation
	}
	if !validAt.IsFinite() {
		return ErrEmptyValidPeriod
	}
	if err := s.admit(at); err != nil {
		return err
	}
	s.append(t.Clone(), t.Key(s.sch), temporal.At(validAt), at)
	return nil
}

// RetractAt supersedes, at commit time at, the current event versions of
// key occurring at instant validAt (Figure 9's correction of Tom's
// erroneous 'full' promotion). Only valid on event relations.
func (s *TemporalStore) RetractAt(key tuple.Tuple, validAt, at temporal.Chronon) error {
	countWrite(Temporal)
	if !s.event {
		return ErrEventRelation
	}
	if err := s.admit(at); err != nil {
		return err
	}
	n := 0
	kh := key.Hash64()
	for _, pos := range append([]int(nil), s.byKey.Lookup(kh)...) {
		row := &s.rows[pos]
		if row.trans.To != temporal.Forever ||
			row.valid.From != validAt ||
			!tuple.Equal(row.data.Key(s.sch), key) {
			continue
		}
		s.closeRow(pos, kh, at)
		n++
	}
	if n == 0 {
		return ErrNoSuchTuple
	}
	return nil
}

// supersede closes every current version of key whose valid period overlaps
// valid, re-appending the uncovered remainders as fresh current versions.
// It returns the number of versions superseded.
func (s *TemporalStore) supersede(key tuple.Tuple, valid temporal.Interval, at temporal.Chronon) int {
	n := 0
	kh := key.Hash64()
	for _, pos := range append([]int(nil), s.byKey.Lookup(kh)...) {
		row := s.rows[pos] // copy: s.rows may grow below
		if row.trans.To != temporal.Forever ||
			!row.valid.Overlaps(valid) ||
			!tuple.Equal(row.data.Key(s.sch), key) {
			continue
		}
		n++
		s.closeRow(pos, kh, at)
		for _, rem := range row.valid.Subtract(valid) {
			s.append(row.data, key, rem, at)
		}
	}
	return n
}

// AsOf performs the rollback operation, returning the historical state that
// was current at transaction time t: every version asserted by then and not
// yet superseded, stamped with its valid period. The result of rollback on
// a temporal relation is a historical relation (§4.4).
func (s *TemporalStore) AsOf(t temporal.Chronon) []Version {
	countRead(Temporal)
	var out []Version
	if s.useIndex {
		s.byTrans.Stab(t, func(_ temporal.Interval, pos int) bool {
			row := s.rows[pos]
			out = append(out, Version{Data: row.data, Valid: row.valid, Trans: row.trans})
			return true
		})
		return out
	}
	for _, row := range s.rows {
		if row.trans.Contains(t) {
			out = append(out, Version{Data: row.data, Valid: row.valid, Trans: row.trans})
		}
	}
	return out
}

// During returns every version that belonged to some believed state during
// the transaction-time window (TQuel's "as of E1 through E2").
func (s *TemporalStore) During(window temporal.Interval) []Version {
	countRead(Temporal)
	var out []Version
	s.byTrans.Overlapping(window, func(iv temporal.Interval, pos int) bool {
		row := s.rows[pos]
		out = append(out, Version{Data: row.data, Valid: row.valid, Trans: iv})
		return true
	})
	return out
}

// TimeSlice answers the fully bitemporal point query: the tuples valid at
// instant v according to the database state as of transaction time asOf.
func (s *TemporalStore) TimeSlice(v, asOf temporal.Chronon) []tuple.Tuple {
	countRead(Temporal)
	var out []tuple.Tuple
	for _, ver := range s.AsOf(asOf) {
		if ver.Valid.Contains(v) {
			out = append(out, ver.Data)
		}
	}
	return out
}

// When returns the versions current as of asOf whose valid period overlaps
// q — the primitive behind TQuel's combined when + as of query in §4.4.
func (s *TemporalStore) When(q temporal.Interval, asOf temporal.Chronon) []Version {
	countRead(Temporal)
	var out []Version
	for _, ver := range s.AsOf(asOf) {
		if ver.Valid.Overlaps(q) {
			out = append(out, ver)
		}
	}
	return out
}

// History returns the currently believed versions for key in valid order.
func (s *TemporalStore) History(key tuple.Tuple) []Version {
	countRead(Temporal)
	var out []Version
	for _, pos := range s.byKey.Lookup(key.Hash64()) {
		row := s.rows[pos]
		if row.trans.To == temporal.Forever && tuple.Equal(row.data.Key(s.sch), key) {
			out = append(out, Version{Data: row.data, Valid: row.valid, Trans: row.trans})
		}
	}
	sortVersionsByValid(out)
	return out
}

// RestoreVersion reloads one stored version verbatim, including superseded
// ones. It exists solely for checkpoint recovery: the version's periods are
// taken as recorded, bypassing the update algebra.
func (s *TemporalStore) RestoreVersion(v Version) error {
	if err := validate(s.sch, v.Data); err != nil {
		return err
	}
	if !v.Trans.IsValid() || !v.Trans.From.IsFinite() {
		return fmt.Errorf("core: restoring version with malformed transaction period %v", v.Trans)
	}
	if !v.Valid.IsValid() {
		return fmt.Errorf("core: restoring version with malformed valid period %v", v.Valid)
	}
	if s.event {
		if d, ok := v.Valid.Duration(); !ok || d != 1 {
			return fmt.Errorf("core: restoring non-event period %v into event relation", v.Valid)
		}
	}
	s.rows = append(s.rows, btRow{data: v.Data.Clone(), valid: v.Valid, trans: v.Trans})
	pos := len(s.rows) - 1
	if v.Trans.To == temporal.Forever {
		s.byKey.Add(v.Data.Key(s.sch).Hash64(), pos)
	}
	s.byTrans.Insert(v.Trans, pos)
	if v.Trans.From > s.lastCommit {
		s.lastCommit = v.Trans.From
	}
	if v.Trans.To.IsFinite() && v.Trans.To > s.lastCommit {
		s.lastCommit = v.Trans.To
	}
	return nil
}

// Versions yields every stored version in commit order.
func (s *TemporalStore) Versions(fn func(Version) bool) {
	for _, row := range s.rows {
		if !fn(Version{Data: row.data, Valid: row.valid, Trans: row.trans}) {
			return
		}
	}
}

// Snapshot returns the tuples believed (as of now) to be valid at now.
func (s *TemporalStore) Snapshot(now temporal.Chronon) []tuple.Tuple {
	var out []tuple.Tuple
	for _, row := range s.rows {
		if row.trans.To == temporal.Forever && row.valid.Contains(now) {
			out = append(out, row.data)
		}
	}
	return out
}

func (s *TemporalStore) admit(at temporal.Chronon) error {
	if at < s.lastCommit || !at.IsFinite() {
		return ErrTimeRegression
	}
	prev := s.lastCommit
	s.lastCommit = at
	s.j.record(func() { s.lastCommit = prev })
	return nil
}

func (s *TemporalStore) append(t, key tuple.Tuple, valid temporal.Interval, at temporal.Chronon) {
	iv := temporal.Since(at)
	s.rows = append(s.rows, btRow{data: t, valid: valid, trans: iv})
	pos := len(s.rows) - 1
	kh := key.Hash64()
	s.byKey.Add(kh, pos)
	s.byTrans.Insert(iv, pos)
	s.j.record(func() {
		s.byTrans.Remove(iv, pos)
		s.byKey.Remove(kh, pos)
		s.rows = s.rows[:pos] // LIFO undo: pos is the last row
	})
}

// closeRow supersedes a current version: its transaction-time end becomes
// the commit chronon and it leaves the current-version key index.
func (s *TemporalStore) closeRow(pos int, keyHash uint64, at temporal.Chronon) {
	old := s.rows[pos].trans
	closed := temporal.Interval{From: old.From, To: at}
	s.rows[pos].trans = closed
	s.byTrans.Update(old, pos, closed)
	s.byKey.Remove(keyHash, pos)
	s.j.record(func() {
		s.byKey.Add(keyHash, pos)
		s.byTrans.Update(closed, pos, old)
		s.rows[pos].trans = old
	})
}
