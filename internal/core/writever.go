package core

import "sync/atomic"

// verCounter is a monotonic write-version counter embedded in every store.
// The transaction layer bumps it after each successful mutation (including
// WAL replay, which re-enters the same transaction methods), and the query
// cache keys current-state results by the resulting per-relation vector: a
// cached entry recorded under an older version is simply never looked up
// again, so invalidation needs no cross-component callbacks.
//
// Like the rest of a store, the counter is written only behind the owning
// database's write lock; it is atomic so the cache layer can read it under
// the shared read lock while a bump is pending on another relation.
type verCounter struct {
	writeVer atomic.Uint64
}

// WriteVersion returns the count of successful mutations applied to the
// store since creation (or since the value persisted by the last snapshot).
func (v *verCounter) WriteVersion() uint64 { return v.writeVer.Load() }

// BumpWriteVersion records one successful mutation.
func (v *verCounter) BumpWriteVersion() { v.writeVer.Add(1) }

// ObserveWriteVersion raises the counter to at least n; snapshot restore
// uses it to re-establish the persisted version so a warm cache keyed
// against pre-checkpoint versions is never served after recovery.
func (v *verCounter) ObserveWriteVersion(n uint64) {
	for {
		cur := v.writeVer.Load()
		if cur >= n || v.writeVer.CompareAndSwap(cur, n) {
			return
		}
	}
}
