package core

import "tdb/internal/obs"

// Per-kind operation counters, labeled with the taxonomy cell. They are
// package-level atomics registered once, so counting an operation is one
// atomic add on the store's (already serialized) path.
var (
	writesTotal = [...]*obs.Counter{
		Static:         kindCounter("writes", "static"),
		StaticRollback: kindCounter("writes", "rollback"),
		Historical:     kindCounter("writes", "historical"),
		Temporal:       kindCounter("writes", "bitemporal"),
	}
	readsTotal = [...]*obs.Counter{
		Static:         kindCounter("reads", "static"),
		StaticRollback: kindCounter("reads", "rollback"),
		Historical:     kindCounter("reads", "historical"),
		Temporal:       kindCounter("reads", "bitemporal"),
	}
)

func kindCounter(op, kind string) *obs.Counter {
	help := "Store read operations (snapshots, slices, scans) by relation kind."
	if op == "writes" {
		help = "Store write operations (inserts, deletes, assertions, retractions) by relation kind."
	}
	return obs.Default.Counter(`tdb_core_`+op+`_total{kind="`+kind+`"}`, help)
}

// countWrite records one mutation against a store of kind k.
func countWrite(k Kind) { writesTotal[k].Inc() }

// countRead records one query operation against a store of kind k.
func countRead(k Kind) { readsTotal[k].Inc() }
