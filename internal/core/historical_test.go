package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// loadFigure6 builds the historical relation of Figure 6:
//
//	Merrie associate [09/01/77, 12/01/82)
//	Merrie full      [12/01/82, ∞)
//	Tom    associate [12/05/82, ∞)
//	Mike   assistant [01/01/83, 03/01/84)
//
// via the same conceptual transactions as the temporal store, expressed as
// corrections of current belief.
func loadFigure6(t *testing.T, s *HistoricalStore) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Assert(fac("Merrie", "associate"), temporal.Since(d770901)))
	must(s.Assert(fac("Tom", "full"), temporal.Since(d821205)))      // erroneous
	must(s.Assert(fac("Tom", "associate"), temporal.Since(d821205))) // corrected
	must(s.Assert(fac("Merrie", "full"), temporal.Since(d821201)))
	must(s.Assert(fac("Mike", "assistant"), temporal.Since(d830101)))
	must(s.Retract(nameKey("Mike"), temporal.Since(d840301)))
}

func TestHistoricalFigure6Versions(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	loadFigure6(t, s)
	want := []string{
		fmt.Sprintf("(Merrie, associate) valid=[09/01/77, 12/01/82) trans=%v", temporal.All),
		fmt.Sprintf("(Merrie, full) valid=[12/01/82, ∞) trans=%v", temporal.All),
		fmt.Sprintf("(Mike, assistant) valid=[01/01/83, 03/01/84) trans=%v", temporal.All),
		fmt.Sprintf("(Tom, associate) valid=[12/05/82, ∞) trans=%v", temporal.All),
	}
	var got []Version
	s.Versions(func(v Version) bool { got = append(got, v); return true })
	if !equalStrings(versionSet(got), want) {
		t.Fatalf("Figure 6 mismatch:\n got %v\nwant %v", versionSet(got), want)
	}
	// The erroneous belief (Tom full) left no trace.
	for _, v := range got {
		if v.Data[1].Str() == "full" && v.Data[0].Str() == "Tom" {
			t.Error("corrected error still present")
		}
	}
}

// Figure 6's TQuel query at store level: Merrie's rank when Tom arrived —
// the versions of Merrie whose valid period overlaps start of Tom's.
func TestHistoricalWhenQuery(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	loadFigure6(t, s)
	tomStart := s.History(nameKey("Tom"))[0].Valid.Start()
	var hits []Version
	for _, v := range s.When(temporal.At(tomStart)) {
		if v.Data[0].Str() == "Merrie" {
			hits = append(hits, v)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	// The paper's answer: full, valid [12/01/82, ∞).
	if hits[0].Data[1].Str() != "full" {
		t.Errorf("rank = %v", hits[0].Data[1])
	}
	if hits[0].Valid != temporal.Since(d821201) {
		t.Errorf("valid = %v", hits[0].Valid)
	}
}

func TestHistoricalTimeSlice(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	loadFigure6(t, s)
	// At 12/10/82, the historical answer is full (contrast the rollback
	// store's associate — the paper's central comparison).
	var rank string
	for _, tp := range s.TimeSlice(d821210) {
		if tp[0].Str() == "Merrie" {
			rank = tp[1].Str()
		}
	}
	if rank != "full" {
		t.Errorf("Merrie valid at 12/10/82 = %q, want full", rank)
	}
	// Before she joined: absent.
	for _, tp := range s.TimeSlice(temporal.Date(1977, 1, 1)) {
		if tp[0].Str() == "Merrie" {
			t.Error("Merrie visible before her start date")
		}
	}
	// Mike after departure: absent; before: present.
	names := tupleNames(s.TimeSlice(temporal.Date(1984, 6, 1)))
	if !equalStrings(names, []string{"Merrie", "Tom"}) {
		t.Errorf("slice after Mike left = %v", names)
	}
	names = tupleNames(s.TimeSlice(temporal.Date(1983, 6, 1)))
	if !equalStrings(names, []string{"Merrie", "Mike", "Tom"}) {
		t.Errorf("slice during Mike = %v", names)
	}
}

func TestHistoricalCoalescesValueEquivalentAssertions(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 10, To: 20}); err != nil {
		t.Fatal(err)
	}
	// Meeting period, same data: one coalesced version.
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 20, To: 30}); err != nil {
		t.Fatal(err)
	}
	h := s.History(nameKey("A"))
	if len(h) != 1 || h[0].Valid != (temporal.Interval{From: 10, To: 30}) {
		t.Fatalf("history = %v", h)
	}
	// Overlapping assertion of same data also coalesces.
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 25, To: 40}); err != nil {
		t.Fatal(err)
	}
	h = s.History(nameKey("A"))
	if len(h) != 1 || h[0].Valid != (temporal.Interval{From: 10, To: 40}) {
		t.Fatalf("history = %v", h)
	}
	// Disjoint assertion stays separate.
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 50, To: 60}); err != nil {
		t.Fatal(err)
	}
	if h = s.History(nameKey("A")); len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
}

func TestHistoricalCorrectionSplitsVersion(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 10, To: 40}); err != nil {
		t.Fatal(err)
	}
	// Correct the middle: A was actually "y" during [20, 30).
	if err := s.Assert(fac("A", "y"), temporal.Interval{From: 20, To: 30}); err != nil {
		t.Fatal(err)
	}
	h := s.History(nameKey("A"))
	if len(h) != 3 {
		t.Fatalf("history = %v", h)
	}
	wants := []struct {
		rank string
		iv   temporal.Interval
	}{
		{"x", temporal.Interval{From: 10, To: 20}},
		{"y", temporal.Interval{From: 20, To: 30}},
		{"x", temporal.Interval{From: 30, To: 40}},
	}
	for i, w := range wants {
		if h[i].Data[1].Str() != w.rank || h[i].Valid != w.iv {
			t.Errorf("history[%d] = %v, want %s %v", i, h[i], w.rank, w.iv)
		}
	}
}

func TestHistoricalRetract(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	if err := s.Retract(nameKey("A"), temporal.Since(0)); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("retract from empty: %v", err)
	}
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 10, To: 40}); err != nil {
		t.Fatal(err)
	}
	if err := s.Retract(nameKey("A"), temporal.Interval{From: 15, To: 20}); err != nil {
		t.Fatal(err)
	}
	h := s.History(nameKey("A"))
	if len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
	// Retracting a non-overlapping period fails.
	if err := s.Retract(nameKey("A"), temporal.Interval{From: 100, To: 200}); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("retract outside: %v", err)
	}
	if err := s.Retract(nameKey("A"), temporal.Interval{From: 5, To: 5}); !errors.Is(err, ErrEmptyValidPeriod) {
		t.Errorf("empty retract: %v", err)
	}
}

func TestHistoricalErrors(t *testing.T) {
	s := NewHistoricalStore(facultySchema(t))
	if err := s.Assert(fac("A", "x"), temporal.Interval{From: 5, To: 5}); !errors.Is(err, ErrEmptyValidPeriod) {
		t.Errorf("empty period: %v", err)
	}
	if err := s.Assert(tuple.New(value.NewInt(1)), temporal.Since(0)); err == nil {
		t.Error("schema violation must be rejected")
	}
	if err := s.AssertAt(fac("A", "x"), 5); !errors.Is(err, ErrEventRelation) {
		t.Errorf("AssertAt on interval relation: %v", err)
	}
}

func TestHistoricalEventRelation(t *testing.T) {
	s := NewHistoricalEventStore(facultySchema(t))
	if !s.Event() {
		t.Fatal("Event() = false")
	}
	if err := s.Assert(fac("A", "x"), temporal.Since(0)); !errors.Is(err, ErrEventRelation) {
		t.Errorf("Assert on event relation: %v", err)
	}
	if err := s.AssertAt(fac("A", "x"), temporal.Forever); !errors.Is(err, ErrEmptyValidPeriod) {
		t.Errorf("infinite event instant: %v", err)
	}
	if err := s.AssertAt(fac("A", "promoted"), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.AssertAt(fac("A", "promoted"), 200); err != nil {
		t.Fatal(err)
	}
	if h := s.History(nameKey("A")); len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
	// Same key, same instant: correction replaces.
	if err := s.AssertAt(fac("A", "demoted"), 200); err != nil {
		t.Fatal(err)
	}
	h := s.History(nameKey("A"))
	if len(h) != 2 {
		t.Fatalf("history = %v", h)
	}
	if h[1].Data[1].Str() != "demoted" {
		t.Errorf("corrected event = %v", h[1])
	}
	// TimeSlice sees the event only at its instant.
	if got := s.TimeSlice(100); len(got) != 1 {
		t.Errorf("slice at event = %v", got)
	}
	if got := s.TimeSlice(101); len(got) != 0 {
		t.Errorf("slice after event = %v", got)
	}
}

// Randomized: the historical store's TimeSlice must agree with a brute
// force "latest assertion wins" reference model at every probed instant.
func TestHistoricalAgainstReferenceModel(t *testing.T) {
	type op struct {
		assert bool
		data   string
		iv     temporal.Interval
	}
	r := rand.New(rand.NewSource(31))
	names := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		s := NewHistoricalStore(facultySchema(t))
		ops := map[string][]op{}
		for i := 0; i < 40; i++ {
			name := names[r.Intn(len(names))]
			from := temporal.Chronon(r.Intn(50))
			iv := temporal.Interval{From: from, To: from + 1 + temporal.Chronon(r.Intn(20))}
			if r.Intn(4) > 0 {
				data := fmt.Sprint(r.Intn(3))
				if err := s.Assert(fac(name, data), iv); err != nil {
					t.Fatal(err)
				}
				ops[name] = append(ops[name], op{assert: true, data: data, iv: iv})
			} else {
				err := s.Retract(nameKey(name), iv)
				if err != nil && !errors.Is(err, ErrNoSuchTuple) {
					t.Fatal(err)
				}
				ops[name] = append(ops[name], op{assert: false, iv: iv})
			}
		}
		for probe := temporal.Chronon(0); probe < 75; probe++ {
			want := map[string]string{}
			for name, list := range ops {
				for _, o := range list {
					if !o.iv.Contains(probe) {
						continue
					}
					if o.assert {
						want[name] = o.data
					} else {
						delete(want, name)
					}
				}
			}
			got := map[string]string{}
			for _, tp := range s.TimeSlice(probe) {
				got[tp[0].Str()] = tp[1].Str()
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d probe %d: got %v want %v", trial, probe, got, want)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("trial %d probe %d: got %v want %v", trial, probe, got, want)
				}
			}
		}
	}
}
