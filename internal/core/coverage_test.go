package core

import (
	"errors"
	"testing"

	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func TestKindMethodTable(t *testing.T) {
	cases := []struct {
		k                              Kind
		name                           string
		rollback, historical, appendOn bool
	}{
		{Static, "static", false, false, false},
		{StaticRollback, "static rollback", true, false, true},
		{Historical, "historical", false, true, false},
		{Temporal, "temporal", true, true, true},
	}
	for _, c := range cases {
		if c.k.String() != c.name {
			t.Errorf("%v.String() = %q", c.k, c.k.String())
		}
		if c.k.SupportsRollback() != c.rollback ||
			c.k.SupportsHistorical() != c.historical ||
			c.k.AppendOnly() != c.appendOn {
			t.Errorf("%v capability methods wrong", c.k)
		}
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestStoreAccessors(t *testing.T) {
	sch := facultySchema(t)
	stores := []Store{
		NewStaticStore(sch),
		NewRollbackStore(sch),
		NewCopyRollbackStore(sch),
		NewHistoricalStore(sch),
		NewTemporalStore(sch),
	}
	for _, s := range stores {
		if s.Schema() != sch {
			t.Errorf("%T lost schema", s)
		}
		if s.Event() {
			t.Errorf("%T default event flag", s)
		}
	}
	rb := NewRollbackStore(sch)
	if rb.LastCommit() != temporal.Beginning {
		t.Error("fresh rollback LastCommit")
	}
	ts := NewTemporalStore(sch)
	if ts.VersionCount() != 0 || ts.LastCommit() != temporal.Beginning {
		t.Error("fresh temporal counters")
	}
	hs := NewHistoricalStore(sch)
	if hs.VersionCount() != 0 {
		t.Error("fresh historical counter")
	}
}

func TestRollbackDuringAndScan(t *testing.T) {
	s := NewRollbackStore(facultySchema(t))
	loadFigure4(t, s)
	// Window spanning Merrie's promotion sees both her versions.
	win := temporal.Interval{From: d821210, To: d821220}
	ranks := map[string]bool{}
	for _, v := range s.During(win) {
		if v.Data[0].Str() == "Merrie" {
			ranks[v.Data[1].Str()] = true
		}
	}
	if !ranks["associate"] || !ranks["full"] {
		t.Fatalf("During = %v", s.During(win))
	}
	// Scan visits current tuples only, with early stop.
	n := 0
	s.Scan(func(tuple.Tuple) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Scan early stop visited %d", n)
	}
}

func TestTemporalDuring(t *testing.T) {
	s := NewTemporalStore(facultySchema(t))
	loadFigure8(t, s)
	win := temporal.Interval{From: d821210, To: d821220}
	ranks := map[string]bool{}
	for _, v := range s.During(win) {
		if v.Data[0].Str() == "Merrie" {
			ranks[v.Data[1].Str()] = true
		}
	}
	if !ranks["associate"] || !ranks["full"] {
		t.Fatalf("During = %v", s.During(win))
	}
}

// RestoreVersion must rebuild a store whose observable behavior matches the
// original exactly, and must reject malformed versions.
func TestRestoreVersionRoundTrip(t *testing.T) {
	orig := NewTemporalStore(facultySchema(t))
	loadFigure8(t, orig)
	restored := NewTemporalStore(facultySchema(t))
	orig.Versions(func(v Version) bool {
		if err := restored.RestoreVersion(v); err != nil {
			t.Fatal(err)
		}
		return true
	})
	for _, probe := range []temporal.Chronon{d770825, d821210, d821220, d840301} {
		if !equalStrings(versionSet(orig.AsOf(probe)), versionSet(restored.AsOf(probe))) {
			t.Fatalf("AsOf(%v) differs after restore", probe)
		}
	}
	if orig.LastCommit() != restored.LastCommit() {
		t.Errorf("LastCommit %v vs %v", orig.LastCommit(), restored.LastCommit())
	}
	// Further updates respect the restored clock.
	if err := restored.Assert(fac("Anna", "new"), temporal.Since(0), d770825); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("restored store accepted stale commit: %v", err)
	}

	// Malformed restores.
	bad := []Version{
		{Data: fac("A", "x"), Valid: temporal.All, Trans: temporal.Interval{From: temporal.Beginning, To: temporal.Forever}},
		{Data: fac("A", "x"), Valid: temporal.Interval{From: 10, To: 5}, Trans: temporal.Since(100)},
		{Data: tuple.New(value.NewInt(1)), Valid: temporal.All, Trans: temporal.Since(100)},
	}
	for i, v := range bad {
		if err := restored.RestoreVersion(v); err == nil {
			t.Errorf("bad restore %d accepted", i)
		}
	}
	// Event stores reject interval periods.
	ev := NewTemporalEventStore(facultySchema(t))
	if err := ev.RestoreVersion(Version{Data: fac("A", "x"),
		Valid: temporal.Interval{From: 1, To: 10}, Trans: temporal.Since(100)}); err == nil {
		t.Error("event store accepted interval period")
	}
	if err := ev.RestoreVersion(Version{Data: fac("A", "x"),
		Valid: temporal.At(5), Trans: temporal.Since(100)}); err != nil {
		t.Errorf("event restore: %v", err)
	}
}

func TestRollbackRestoreVersion(t *testing.T) {
	orig := NewRollbackStore(facultySchema(t))
	loadFigure4(t, orig)
	restored := NewRollbackStore(facultySchema(t))
	orig.Versions(func(v Version) bool {
		if err := restored.RestoreVersion(v); err != nil {
			t.Fatal(err)
		}
		return true
	})
	for _, probe := range []temporal.Chronon{d770825, d821210, d830110, d840301} {
		if !equalStrings(tupleSet(orig.AsOf(probe)), tupleSet(restored.AsOf(probe))) {
			t.Fatalf("AsOf(%v) differs after restore", probe)
		}
	}
	if err := restored.RestoreVersion(Version{Data: fac("A", "x"),
		Trans: temporal.Interval{From: 10, To: 5}}); err == nil {
		t.Error("inverted trans accepted")
	}
	if err := restored.RestoreVersion(Version{Data: tuple.New(value.NewInt(1)),
		Trans: temporal.Since(100)}); err == nil {
		t.Error("schema violation accepted")
	}
}

func TestVersionsEarlyStop(t *testing.T) {
	rb := NewRollbackStore(facultySchema(t))
	loadFigure4(t, rb)
	n := 0
	rb.Versions(func(Version) bool { n++; return false })
	if n != 1 {
		t.Errorf("rollback Versions early stop visited %d", n)
	}
	ts := NewTemporalStore(facultySchema(t))
	loadFigure8(t, ts)
	n = 0
	ts.Versions(func(Version) bool { n++; return false })
	if n != 1 {
		t.Errorf("temporal Versions early stop visited %d", n)
	}
	hs := NewHistoricalStore(facultySchema(t))
	loadFigure6(t, hs)
	n = 0
	hs.Versions(func(Version) bool { n++; return false })
	if n != 1 {
		t.Errorf("historical Versions early stop visited %d", n)
	}
}
