package core

import (
	"sort"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// CopyRollbackStore is the naive static rollback representation pictured in
// Figure 3: the relation "can be regarded as a sequence of static relations
// indexed by time", stored literally, with every transaction appending a
// complete copy of the new static state to the front of the cube.
//
// The paper immediately rejects this representation — "implementing a
// static rollback relation in this way is impractical, due to excessive
// duplication: the tuples that don't change between states must be
// duplicated in the new state" — and Figure 4's tuple timestamping replaces
// it. It is retained here as the baseline for the ablation benchmarks
// (BenchmarkAblationCopyVsStamped*), which measure exactly how impractical.
type CopyRollbackStore struct {
	sch        *schema.Schema
	times      []temporal.Chronon // commit chronon of each state, ascending
	states     [][]tuple.Tuple    // full copy of the state after each commit
	lastCommit temporal.Chronon
	j          journal
	verCounter
}

// NewCopyRollbackStore creates an empty naive rollback relation.
func NewCopyRollbackStore(sch *schema.Schema) *CopyRollbackStore {
	return &CopyRollbackStore{sch: sch, lastCommit: temporal.Beginning}
}

// Kind returns StaticRollback: the two representations are semantically
// interchangeable, which the equivalence tests exploit.
func (s *CopyRollbackStore) Kind() Kind { return StaticRollback }

// Schema returns the relation schema.
func (s *CopyRollbackStore) Schema() *schema.Schema { return s.sch }

// Event returns false.
func (s *CopyRollbackStore) Event() bool { return false }

// StateCount returns the number of stored static states.
func (s *CopyRollbackStore) StateCount() int { return len(s.states) }

// TupleCopies returns the total number of stored tuple copies across all
// states — the quantity that grows quadratically and motivates Figure 4.
func (s *CopyRollbackStore) TupleCopies() int {
	n := 0
	for _, st := range s.states {
		n += len(st)
	}
	return n
}

// Apply commits a new static state computed by transforming the current
// one. The transform receives a copy it may mutate and return.
func (s *CopyRollbackStore) Apply(at temporal.Chronon, transform func([]tuple.Tuple) ([]tuple.Tuple, error)) error {
	if at < s.lastCommit || !at.IsFinite() {
		return ErrTimeRegression
	}
	cur := s.Snapshot(at)
	next, err := transform(cur)
	if err != nil {
		return err
	}
	prev := s.lastCommit
	s.lastCommit = at
	s.j.record(func() { s.lastCommit = prev })
	if n := len(s.times); n > 0 && s.times[n-1] == at {
		// Same commit chronon: collapse into one state, like the
		// timestamped representation does.
		old := s.states[n-1]
		s.states[n-1] = next
		s.j.record(func() { s.states[n-1] = old })
		return nil
	}
	s.times = append(s.times, at)
	s.states = append(s.states, next)
	s.j.record(func() {
		s.times = s.times[:len(s.times)-1]
		s.states = s.states[:len(s.states)-1]
	})
	return nil
}

// BeginTxn starts collecting undo information (see Transactional).
func (s *CopyRollbackStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn.
func (s *CopyRollbackStore) CommitTxn() { s.j.commit() }

// AbortTxn reverts mutations since BeginTxn.
func (s *CopyRollbackStore) AbortTxn() { s.j.abort() }

// Insert appends a tuple to a fresh copy of the current state.
func (s *CopyRollbackStore) Insert(t tuple.Tuple, at temporal.Chronon) error {
	if err := validate(s.sch, t); err != nil {
		return err
	}
	return s.Apply(at, func(cur []tuple.Tuple) ([]tuple.Tuple, error) {
		key := t.Key(s.sch)
		for _, row := range cur {
			if tuple.Equal(row.Key(s.sch), key) {
				return nil, ErrDuplicateKey
			}
		}
		return append(cur, t.Clone()), nil
	})
}

// Delete removes the keyed tuple in a fresh copy of the current state.
func (s *CopyRollbackStore) Delete(key tuple.Tuple, at temporal.Chronon) error {
	return s.Apply(at, func(cur []tuple.Tuple) ([]tuple.Tuple, error) {
		for i, row := range cur {
			if tuple.Equal(row.Key(s.sch), key) {
				return append(cur[:i], cur[i+1:]...), nil
			}
		}
		return nil, ErrNoSuchTuple
	})
}

// Replace substitutes the keyed tuple in a fresh copy of the current state.
func (s *CopyRollbackStore) Replace(key tuple.Tuple, t tuple.Tuple, at temporal.Chronon) error {
	if err := validate(s.sch, t); err != nil {
		return err
	}
	return s.Apply(at, func(cur []tuple.Tuple) ([]tuple.Tuple, error) {
		for i, row := range cur {
			if tuple.Equal(row.Key(s.sch), key) {
				cur[i] = t.Clone()
				return cur, nil
			}
		}
		return nil, ErrNoSuchTuple
	})
}

// AsOf returns the static state current at transaction time t, by binary
// search over the state sequence. The returned slice must not be modified.
func (s *CopyRollbackStore) AsOf(t temporal.Chronon) []tuple.Tuple {
	// First state with commit time > t; we want the one before it.
	i := sort.Search(len(s.times), func(i int) bool { return s.times[i] > t })
	if i == 0 {
		return nil
	}
	return s.states[i-1]
}

// Snapshot returns a mutable copy of the current state.
func (s *CopyRollbackStore) Snapshot(temporal.Chronon) []tuple.Tuple {
	if len(s.states) == 0 {
		return nil
	}
	cur := s.states[len(s.states)-1]
	out := make([]tuple.Tuple, len(cur))
	copy(out, cur)
	return out
}

// Versions yields every tuple copy in every state, stamped with the
// transaction-time period for which that state was current.
func (s *CopyRollbackStore) Versions(fn func(Version) bool) {
	for i, st := range s.states {
		end := temporal.Forever
		if i+1 < len(s.times) {
			end = s.times[i+1]
		}
		iv := temporal.Interval{From: s.times[i], To: end}
		for _, row := range st {
			if !fn(Version{Data: row, Valid: temporal.All, Trans: iv}) {
				return
			}
		}
	}
}
