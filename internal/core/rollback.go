package core

import (
	"fmt"

	"tdb/internal/index"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// RollbackStore is a static rollback relation (§4.2, Figure 4): every tuple
// carries the transaction-time period during which it was part of the
// current state, and the rollback operation AsOf reconstructs any past
// state. The store is append-only — "once a transaction has completed, the
// static relations in the static rollback relation may not be altered" — so
// the only permitted change to committed data is closing a current
// version's transaction-time end.
//
// Updates take a commit chronon supplied by the transaction layer, which
// must be non-decreasing; supplying an earlier chronon fails with
// ErrTimeRegression (the paper's "non-stop running clock").
type RollbackStore struct {
	sch        *schema.Schema
	rows       []rbRow
	byKey      index.Hash // key hash -> current position
	byTrans    *index.IntervalTree
	lastCommit temporal.Chronon
	useIndex   bool
	j          journal
	verCounter
}

type rbRow struct {
	data  tuple.Tuple
	trans temporal.Interval
}

// NewRollbackStore creates an empty static rollback relation.
func NewRollbackStore(sch *schema.Schema) *RollbackStore {
	return &RollbackStore{
		sch:        sch,
		byTrans:    index.NewIntervalTree(),
		lastCommit: temporal.Beginning,
		useIndex:   true,
	}
}

// DisableIntervalIndex switches AsOf to a linear scan over all versions.
// It exists solely for the ablation benchmarks (A3 in DESIGN.md); the index
// is still maintained.
func (s *RollbackStore) DisableIntervalIndex(disabled bool) { s.useIndex = !disabled }

// BeginTxn starts collecting undo information (see Transactional).
func (s *RollbackStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn.
func (s *RollbackStore) CommitTxn() { s.j.commit() }

// AbortTxn reverts mutations since BeginTxn. Aborting does not violate the
// append-only discipline: an aborted transaction never committed, so the
// versions it wrote were never part of any completed state.
func (s *RollbackStore) AbortTxn() { s.j.abort() }

// Kind returns StaticRollback.
func (s *RollbackStore) Kind() Kind { return StaticRollback }

// Schema returns the relation schema.
func (s *RollbackStore) Schema() *schema.Schema { return s.sch }

// Event returns false: rollback relations carry no valid time at all.
func (s *RollbackStore) Event() bool { return false }

// VersionCount returns the total number of stored versions, current and
// closed.
func (s *RollbackStore) VersionCount() int { return len(s.rows) }

// LastCommit returns the latest commit chronon applied.
func (s *RollbackStore) LastCommit() temporal.Chronon { return s.lastCommit }

// Insert appends a tuple to the current state at commit time at. As in a
// static database, "a tuple becomes valid as soon as it is entered": there
// is no way to record retroactive or postactive information here.
func (s *RollbackStore) Insert(t tuple.Tuple, at temporal.Chronon) error {
	countWrite(StaticRollback)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if err := s.admit(at); err != nil {
		return err
	}
	key := t.Key(s.sch)
	if _, ok := s.current(key); ok {
		return ErrDuplicateKey
	}
	s.append(t.Clone(), key, at)
	return nil
}

// Delete removes the tuple with the given key from the current state at
// commit time at. The version remains reachable through AsOf forever:
// errors "can sometimes be overridden ... but they cannot be forgotten".
func (s *RollbackStore) Delete(key tuple.Tuple, at temporal.Chronon) error {
	countWrite(StaticRollback)
	if err := s.admit(at); err != nil {
		return err
	}
	pos, ok := s.current(key)
	if !ok {
		return ErrNoSuchTuple
	}
	s.close(pos, key, at)
	return nil
}

// Replace substitutes the tuple with the given key at commit time at,
// closing the old version and appending the new one.
func (s *RollbackStore) Replace(key tuple.Tuple, t tuple.Tuple, at temporal.Chronon) error {
	countWrite(StaticRollback)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if err := s.admit(at); err != nil {
		return err
	}
	pos, ok := s.current(key)
	if !ok {
		return ErrNoSuchTuple
	}
	newKey := t.Key(s.sch)
	if !tuple.Equal(key, newKey) {
		if _, exists := s.current(newKey); exists {
			return ErrDuplicateKey
		}
	}
	s.close(pos, key, at)
	s.append(t.Clone(), newKey, at)
	return nil
}

// Get returns the current tuple with the given key.
func (s *RollbackStore) Get(key tuple.Tuple) (tuple.Tuple, bool) {
	countRead(StaticRollback)
	pos, ok := s.current(key)
	if !ok {
		return nil, false
	}
	return s.rows[pos].data, true
}

// AsOf performs the rollback operation: it returns the static state that
// was current at transaction time t. The result of rollback on a static
// rollback relation is a pure static relation (§4.2).
func (s *RollbackStore) AsOf(t temporal.Chronon) []tuple.Tuple {
	countRead(StaticRollback)
	var out []tuple.Tuple
	if s.useIndex {
		s.byTrans.Stab(t, func(_ temporal.Interval, pos int) bool {
			out = append(out, s.rows[pos].data)
			return true
		})
		return out
	}
	for _, row := range s.rows {
		if row.trans.Contains(t) {
			out = append(out, row.data)
		}
	}
	return out
}

// During returns every version that was part of some current state during
// the transaction-time window — the primitive behind TQuel's
// "as of E1 through E2", which views the database across a span of its own
// history rather than at one instant.
func (s *RollbackStore) During(window temporal.Interval) []Version {
	countRead(StaticRollback)
	var out []Version
	s.byTrans.Overlapping(window, func(iv temporal.Interval, pos int) bool {
		out = append(out, Version{Data: s.rows[pos].data, Valid: temporal.All, Trans: iv})
		return true
	})
	return out
}

// Snapshot returns the current state.
func (s *RollbackStore) Snapshot(now temporal.Chronon) []tuple.Tuple {
	countRead(StaticRollback)
	var out []tuple.Tuple
	for _, row := range s.rows {
		if row.trans.To == temporal.Forever {
			out = append(out, row.data)
		}
	}
	_ = now
	return out
}

// Versions yields every stored version; valid time is reported as the
// universal interval since the kind does not model it.
func (s *RollbackStore) Versions(fn func(Version) bool) {
	for _, row := range s.rows {
		if !fn(Version{Data: row.data, Valid: temporal.All, Trans: row.trans}) {
			return
		}
	}
}

// RestoreVersion reloads one stored version verbatim, including superseded
// ones. It exists solely for checkpoint recovery: it bypasses the update
// algebra (the version's transaction period is taken as recorded) while
// preserving the append-only invariants thereafter.
func (s *RollbackStore) RestoreVersion(v Version) error {
	if err := validate(s.sch, v.Data); err != nil {
		return err
	}
	if !v.Trans.IsValid() || !v.Trans.From.IsFinite() {
		return fmt.Errorf("core: restoring version with malformed transaction period %v", v.Trans)
	}
	s.rows = append(s.rows, rbRow{data: v.Data.Clone(), trans: v.Trans})
	pos := len(s.rows) - 1
	if v.Trans.To == temporal.Forever {
		s.byKey.Add(v.Data.Key(s.sch).Hash64(), pos)
	}
	s.byTrans.Insert(v.Trans, pos)
	if v.Trans.From > s.lastCommit {
		s.lastCommit = v.Trans.From
	}
	if v.Trans.To.IsFinite() && v.Trans.To > s.lastCommit {
		s.lastCommit = v.Trans.To
	}
	return nil
}

// Scan calls fn for every current tuple.
func (s *RollbackStore) Scan(fn func(tuple.Tuple) bool) {
	for _, row := range s.rows {
		if row.trans.To == temporal.Forever && !fn(row.data) {
			return
		}
	}
}

func (s *RollbackStore) admit(at temporal.Chronon) error {
	if at < s.lastCommit {
		return ErrTimeRegression
	}
	if !at.IsFinite() {
		return ErrTimeRegression
	}
	prev := s.lastCommit
	s.lastCommit = at
	s.j.record(func() { s.lastCommit = prev })
	return nil
}

func (s *RollbackStore) current(key tuple.Tuple) (int, bool) {
	for _, pos := range s.byKey.Lookup(key.Hash64()) {
		row := s.rows[pos]
		if row.trans.To == temporal.Forever && tuple.Equal(row.data.Key(s.sch), key) {
			return pos, true
		}
	}
	return 0, false
}

func (s *RollbackStore) append(t, key tuple.Tuple, at temporal.Chronon) {
	iv := temporal.Since(at)
	s.rows = append(s.rows, rbRow{data: t, trans: iv})
	pos := len(s.rows) - 1
	kh := key.Hash64()
	s.byKey.Add(kh, pos)
	s.byTrans.Insert(iv, pos)
	s.j.record(func() {
		s.byTrans.Remove(iv, pos)
		s.byKey.Remove(kh, pos)
		s.rows = s.rows[:pos] // LIFO undo: pos is the last row
	})
}

func (s *RollbackStore) close(pos int, key tuple.Tuple, at temporal.Chronon) {
	old := s.rows[pos].trans
	closed := temporal.Interval{From: old.From, To: at}
	s.rows[pos].trans = closed
	kh := key.Hash64()
	s.byKey.Remove(kh, pos)
	s.byTrans.Update(old, pos, closed)
	s.j.record(func() {
		s.byTrans.Update(closed, pos, old)
		s.byKey.Add(kh, pos)
		s.rows[pos].trans = old
	})
}
