package core

import (
	"fmt"

	"tdb/internal/index"
	"tdb/internal/schema"
	"tdb/internal/segment"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// RollbackStore is a static rollback relation (§4.2, Figure 4): every tuple
// carries the transaction-time period during which it was part of the
// current state, and the rollback operation AsOf reconstructs any past
// state. The store is append-only — "once a transaction has completed, the
// static relations in the static rollback relation may not be altered" — so
// the only permitted change to committed data is closing a current
// version's transaction-time end.
//
// Like TemporalStore, the version log is a segment.Log: committed history
// seals into columnar segments whose transaction-time zone maps let AsOf
// scans skip whole segments. Rollback relations carry no valid time, so
// sealed rows store the universal interval there.
//
// Updates take a commit chronon supplied by the transaction layer, which
// must be non-decreasing; supplying an earlier chronon fails with
// ErrTimeRegression (the paper's "non-stop running clock").
type RollbackStore struct {
	sch        *schema.Schema
	log        *segment.Log
	byKey      index.Hash // key hash -> current position
	byTrans    *index.IntervalTree
	lastCommit temporal.Chronon
	useIndex   bool
	j          journal
	verCounter
}

// NewRollbackStore creates an empty static rollback relation.
func NewRollbackStore(sch *schema.Schema) *RollbackStore {
	return &RollbackStore{
		sch:        sch,
		log:        segment.NewLog(sch),
		byTrans:    index.NewIntervalTree(),
		lastCommit: temporal.Beginning,
		useIndex:   true,
	}
}

// DisableIntervalIndex switches AsOf to a linear scan over all versions.
// It exists solely for the ablation benchmarks (A3 in DESIGN.md); the index
// is still maintained. With segments enabled the "linear" scan is the
// zone-mapped segment scan.
func (s *RollbackStore) DisableIntervalIndex(disabled bool) { s.useIndex = !disabled }

// DisableSegments switches tail sealing off (the flat-path ablation).
func (s *RollbackStore) DisableSegments(disabled bool) { s.log.SetDisabled(disabled) }

// SegmentsDisabled reports whether the flat path is active.
func (s *RollbackStore) SegmentsDisabled() bool { return s.log.Disabled() }

// SetSegmentRows overrides the tail size that triggers a seal at commit.
func (s *RollbackStore) SetSegmentRows(n int) { s.log.SetSealRows(n) }

// SegmentStats summarizes the store's segmentation.
func (s *RollbackStore) SegmentStats() segment.Stats { return s.log.Stats() }

// Segments exposes the sealed segments for checkpoint encoding.
func (s *RollbackStore) Segments() []*segment.Segment { return s.log.Segments() }

// ScanTailVersions yields the versions not yet sealed, in commit order.
func (s *RollbackStore) ScanTailVersions(fn func(Version) bool) {
	s.log.ScanTail(func(_ int, r segment.Row) bool {
		return fn(Version{Data: r.Data, Valid: temporal.All, Trans: r.Trans})
	})
}

// BeginTxn starts collecting undo information (see Transactional).
func (s *RollbackStore) BeginTxn() { s.j.begin() }

// CommitTxn finalizes mutations since BeginTxn and, with the journal empty,
// seals a full tail into a columnar segment (see TemporalStore.CommitTxn).
func (s *RollbackStore) CommitTxn() {
	s.j.commit()
	s.log.Seal()
}

// AbortTxn reverts mutations since BeginTxn. Aborting does not violate the
// append-only discipline: an aborted transaction never committed, so the
// versions it wrote were never part of any completed state.
func (s *RollbackStore) AbortTxn() { s.j.abort() }

// Kind returns StaticRollback.
func (s *RollbackStore) Kind() Kind { return StaticRollback }

// Schema returns the relation schema.
func (s *RollbackStore) Schema() *schema.Schema { return s.sch }

// Event returns false: rollback relations carry no valid time at all.
func (s *RollbackStore) Event() bool { return false }

// VersionCount returns the total number of stored versions, current and
// closed.
func (s *RollbackStore) VersionCount() int { return s.log.Len() }

// LastCommit returns the latest commit chronon applied.
func (s *RollbackStore) LastCommit() temporal.Chronon { return s.lastCommit }

// Insert appends a tuple to the current state at commit time at. As in a
// static database, "a tuple becomes valid as soon as it is entered": there
// is no way to record retroactive or postactive information here.
func (s *RollbackStore) Insert(t tuple.Tuple, at temporal.Chronon) error {
	countWrite(StaticRollback)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if err := s.admit(at); err != nil {
		return err
	}
	key := t.Key(s.sch)
	if _, ok := s.current(key); ok {
		return ErrDuplicateKey
	}
	s.append(t.Clone(), key, at)
	return nil
}

// Delete removes the tuple with the given key from the current state at
// commit time at. The version remains reachable through AsOf forever:
// errors "can sometimes be overridden ... but they cannot be forgotten".
func (s *RollbackStore) Delete(key tuple.Tuple, at temporal.Chronon) error {
	countWrite(StaticRollback)
	if err := s.admit(at); err != nil {
		return err
	}
	pos, ok := s.current(key)
	if !ok {
		return ErrNoSuchTuple
	}
	s.close(pos, key, at)
	return nil
}

// Replace substitutes the tuple with the given key at commit time at,
// closing the old version and appending the new one.
func (s *RollbackStore) Replace(key tuple.Tuple, t tuple.Tuple, at temporal.Chronon) error {
	countWrite(StaticRollback)
	if err := validate(s.sch, t); err != nil {
		return err
	}
	if err := s.admit(at); err != nil {
		return err
	}
	pos, ok := s.current(key)
	if !ok {
		return ErrNoSuchTuple
	}
	newKey := t.Key(s.sch)
	if !tuple.Equal(key, newKey) {
		if _, exists := s.current(newKey); exists {
			return ErrDuplicateKey
		}
	}
	s.close(pos, key, at)
	s.append(t.Clone(), newKey, at)
	return nil
}

// Get returns the current tuple with the given key.
func (s *RollbackStore) Get(key tuple.Tuple) (tuple.Tuple, bool) {
	countRead(StaticRollback)
	pos, ok := s.current(key)
	if !ok {
		return nil, false
	}
	return s.log.Row(pos).Data, true
}

// AsOf performs the rollback operation: it returns the static state that
// was current at transaction time t. The result of rollback on a static
// rollback relation is a pure static relation (§4.2).
func (s *RollbackStore) AsOf(t temporal.Chronon) []tuple.Tuple {
	countRead(StaticRollback)
	var out []tuple.Tuple
	if s.useIndex {
		s.byTrans.Stab(t, func(_ temporal.Interval, pos int) bool {
			out = append(out, s.log.Row(pos).Data)
			return true
		})
		return out
	}
	s.log.ScanAsOf(t, nil, func(_ int, r segment.Row) bool {
		out = append(out, r.Data)
		return true
	})
	return out
}

// AsOfVersions is AsOf keeping the version stamps, in commit order — the
// shape the relation facade's VisibleVersions needs. The scan always takes
// the segment path so its zone maps can skip fully-superseded history.
func (s *RollbackStore) AsOfVersions(t temporal.Chronon) []Version {
	return s.AsOfVersionsFiltered(t, nil)
}

// AsOfVersionsFiltered is AsOfVersions with optional comparison pre-filters
// evaluated on the segment columns before materialization. Acceleration
// only: callers re-verify the originating predicate on the returned
// versions.
func (s *RollbackStore) AsOfVersionsFiltered(t temporal.Chronon, filters []*segment.Filter) []Version {
	countRead(StaticRollback)
	var out []Version
	s.log.ScanAsOf(t, filters, func(_ int, r segment.Row) bool {
		out = append(out, Version{Data: r.Data, Valid: temporal.All, Trans: r.Trans})
		return true
	})
	return out
}

// During returns every version that was part of some current state during
// the transaction-time window — the primitive behind TQuel's
// "as of E1 through E2", which views the database across a span of its own
// history rather than at one instant.
func (s *RollbackStore) During(window temporal.Interval) []Version {
	countRead(StaticRollback)
	var out []Version
	if s.useIndex {
		s.byTrans.Overlapping(window, func(iv temporal.Interval, pos int) bool {
			out = append(out, Version{Data: s.log.Row(pos).Data, Valid: temporal.All, Trans: iv})
			return true
		})
		return out
	}
	s.log.ScanTransOverlap(window, func(_ int, r segment.Row) bool {
		out = append(out, Version{Data: r.Data, Valid: temporal.All, Trans: r.Trans})
		return true
	})
	return out
}

// Snapshot returns the current state.
func (s *RollbackStore) Snapshot(now temporal.Chronon) []tuple.Tuple {
	countRead(StaticRollback)
	var out []tuple.Tuple
	s.log.ScanCurrent(nil, func(_ int, r segment.Row) bool {
		out = append(out, r.Data)
		return true
	})
	_ = now
	return out
}

// Versions yields every stored version; valid time is reported as the
// universal interval since the kind does not model it.
func (s *RollbackStore) Versions(fn func(Version) bool) {
	s.log.Scan(func(_ int, r segment.Row) bool {
		return fn(Version{Data: r.Data, Valid: temporal.All, Trans: r.Trans})
	})
}

// ScanKey yields every stored version whose key hash matches, in commit
// order, skipping sealed segments via their bloom filters. Callers must
// still compare the key projection: hashes can collide.
func (s *RollbackStore) ScanKey(kh uint64, fn func(Version) bool) {
	countRead(StaticRollback)
	s.log.ScanKey(kh, func(_ int, r segment.Row) bool {
		return fn(Version{Data: r.Data, Valid: temporal.All, Trans: r.Trans})
	})
}

// RestoreVersion reloads one stored version verbatim, including superseded
// ones. It exists solely for checkpoint recovery: it bypasses the update
// algebra (the version's transaction period is taken as recorded) while
// preserving the append-only invariants thereafter. Restored tails seal on
// the same threshold as live commits.
func (s *RollbackStore) RestoreVersion(v Version) error {
	if err := validate(s.sch, v.Data); err != nil {
		return err
	}
	if !v.Trans.IsValid() || !v.Trans.From.IsFinite() {
		return fmt.Errorf("core: restoring version with malformed transaction period %v", v.Trans)
	}
	key := v.Data.Key(s.sch)
	pos := s.log.Append(segment.Row{Data: v.Data.Clone(), Valid: temporal.All, Trans: v.Trans, KeyHash: key.Hash64()})
	if v.Trans.To == temporal.Forever {
		s.byKey.Add(key.Hash64(), pos)
	}
	s.byTrans.Insert(v.Trans, pos)
	if v.Trans.From > s.lastCommit {
		s.lastCommit = v.Trans.From
	}
	if v.Trans.To.IsFinite() && v.Trans.To > s.lastCommit {
		s.lastCommit = v.Trans.To
	}
	s.log.Seal()
	return nil
}

// RestoreSegment reattaches a checkpoint segment block and indexes its rows.
// Blocks arrive in position order before any row-wise tail versions.
func (s *RollbackStore) RestoreSegment(g *segment.Segment) error {
	if err := s.log.RestoreSegment(g); err != nil {
		return err
	}
	for i := 0; i < g.Len(); i++ {
		pos := g.Start() + i
		tr := s.log.Trans(pos)
		s.byTrans.Insert(tr, pos)
		if tr.To == temporal.Forever {
			s.byKey.Add(s.log.KeyHash(pos), pos)
		}
		if tr.From > s.lastCommit {
			s.lastCommit = tr.From
		}
		if tr.To.IsFinite() && tr.To > s.lastCommit {
			s.lastCommit = tr.To
		}
	}
	return nil
}

// Scan calls fn for every current tuple.
func (s *RollbackStore) Scan(fn func(tuple.Tuple) bool) {
	s.log.ScanCurrent(nil, func(_ int, r segment.Row) bool {
		return fn(r.Data)
	})
}

func (s *RollbackStore) admit(at temporal.Chronon) error {
	if at < s.lastCommit {
		return ErrTimeRegression
	}
	if !at.IsFinite() {
		return ErrTimeRegression
	}
	prev := s.lastCommit
	s.lastCommit = at
	s.j.record(func() { s.lastCommit = prev })
	return nil
}

func (s *RollbackStore) current(key tuple.Tuple) (int, bool) {
	for _, pos := range s.byKey.Lookup(key.Hash64()) {
		row := s.log.Row(pos)
		if row.Trans.To == temporal.Forever && tuple.Equal(row.Data.Key(s.sch), key) {
			return pos, true
		}
	}
	return 0, false
}

func (s *RollbackStore) append(t, key tuple.Tuple, at temporal.Chronon) {
	iv := temporal.Since(at)
	kh := key.Hash64()
	pos := s.log.Append(segment.Row{Data: t, Valid: temporal.All, Trans: iv, KeyHash: kh})
	s.byKey.Add(kh, pos)
	s.byTrans.Insert(iv, pos)
	s.j.record(func() {
		s.byTrans.Remove(iv, pos)
		s.byKey.Remove(kh, pos)
		s.log.TruncateTail(pos) // LIFO undo: pos is the last row
	})
}

func (s *RollbackStore) close(pos int, key tuple.Tuple, at temporal.Chronon) {
	old := s.log.Trans(pos)
	closed := temporal.Interval{From: old.From, To: at}
	s.log.CloseTrans(pos, at)
	kh := key.Hash64()
	s.byKey.Remove(kh, pos)
	s.byTrans.Update(old, pos, closed)
	s.j.record(func() {
		s.byTrans.Update(closed, pos, old)
		s.byKey.Add(kh, pos)
		s.log.CloseTrans(pos, old.To)
	})
}
