package core

import (
	"sort"
	"testing"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// The paper's running example: faculty(name, rank) keyed by name.
func facultySchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
	)
	keyed, err := s.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	return keyed
}

func fac(name, rank string) tuple.Tuple {
	return tuple.New(value.NewString(name), value.NewString(rank))
}

func nameKey(name string) tuple.Tuple {
	return tuple.New(value.NewString(name))
}

// Dates used throughout the paper's figures.
var (
	d770825 = temporal.Date(1977, 8, 25)  // Merrie entered (postactively)
	d770901 = temporal.Date(1977, 9, 1)   // Merrie started
	d821201 = temporal.Date(1982, 12, 1)  // Merrie promoted; Tom entered
	d821205 = temporal.Date(1982, 12, 5)  // Tom started
	d821207 = temporal.Date(1982, 12, 7)  // Tom's rank corrected
	d821210 = temporal.Date(1982, 12, 10) // query date (Figure 4/8)
	d821215 = temporal.Date(1982, 12, 15) // Merrie's promotion recorded
	d821220 = temporal.Date(1982, 12, 20) // second query date (§4.4)
	d830101 = temporal.Date(1983, 1, 1)   // Mike started
	d830110 = temporal.Date(1983, 1, 10)  // Mike entered
	d840225 = temporal.Date(1984, 2, 25)  // Mike's departure recorded
	d840301 = temporal.Date(1984, 3, 1)   // Mike left
)

// tupleNames extracts the name attribute of each tuple, sorted, for
// order-insensitive state comparison.
func tupleNames(ts []tuple.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t[0].Str()
	}
	sort.Strings(out)
	return out
}

// tupleSet renders tuples as sorted strings for set comparison.
func tupleSet(ts []tuple.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// versionSet renders versions as sorted strings for set comparison.
func versionSet(vs []Version) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}
