package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"tdb/temporal"
)

// fingerprint captures the externally observable state of a store: every
// version plus snapshots and rollbacks at many probe instants.
func fingerprint(s Store, probes []temporal.Chronon) []string {
	var out []string
	s.Versions(func(v Version) bool {
		out = append(out, "v:"+v.String())
		return true
	})
	for _, p := range probes {
		for _, t := range s.Snapshot(p) {
			out = append(out, fmt.Sprintf("s%v:%v", p, t))
		}
	}
	switch st := s.(type) {
	case *RollbackStore:
		for _, p := range probes {
			for _, t := range st.AsOf(p) {
				out = append(out, fmt.Sprintf("a%v:%v", p, t))
			}
		}
	case *TemporalStore:
		for _, p := range probes {
			for _, v := range st.AsOf(p) {
				out = append(out, fmt.Sprintf("a%v:%v", p, v))
			}
		}
	case *CopyRollbackStore:
		for _, p := range probes {
			for _, t := range st.AsOf(p) {
				out = append(out, fmt.Sprintf("a%v:%v", p, t))
			}
		}
	case *HistoricalStore:
		for _, p := range probes {
			for _, t := range st.TimeSlice(p) {
				out = append(out, fmt.Sprintf("a%v:%v", p, t))
			}
		}
	}
	// Index-backed enumeration order (treap shape) may legitimately differ
	// after undo; only the set of observations matters.
	sort.Strings(out)
	return out
}

// randomOp applies one random (possibly failing) mutation appropriate to
// the store kind.
func randomOp(r *rand.Rand, s Store, clock *temporal.TickingClock, i int) {
	names := []string{"a", "b", "c", "d"}
	name := names[r.Intn(len(names))]
	data := fac(name, fmt.Sprint(i%4))
	key := nameKey(name)
	from := temporal.Chronon(r.Intn(60))
	valid := temporal.Interval{From: from, To: from + 1 + temporal.Chronon(r.Intn(30))}
	switch st := s.(type) {
	case *StaticStore:
		switch r.Intn(3) {
		case 0:
			_ = st.Insert(data)
		case 1:
			_ = st.Delete(key)
		default:
			_ = st.Replace(key, data)
		}
	case *RollbackStore:
		at := clock.Now()
		switch r.Intn(3) {
		case 0:
			_ = st.Insert(data, at)
		case 1:
			_ = st.Delete(key, at)
		default:
			_ = st.Replace(key, data, at)
		}
	case *CopyRollbackStore:
		at := clock.Now()
		switch r.Intn(3) {
		case 0:
			_ = st.Insert(data, at)
		case 1:
			_ = st.Delete(key, at)
		default:
			_ = st.Replace(key, data, at)
		}
	case *HistoricalStore:
		if r.Intn(3) > 0 {
			_ = st.Assert(data, valid)
		} else {
			_ = st.Retract(key, valid)
		}
	case *TemporalStore:
		at := clock.Now()
		if r.Intn(3) > 0 {
			_ = st.Assert(data, valid, at)
		} else {
			_ = st.Retract(key, valid, at)
		}
	}
}

type txnStore interface {
	Store
	Transactional
}

// TestAbortRestoresState: for every store kind, a random prefix of
// committed work followed by an aborted transaction of random work must
// leave the store observably identical to the pre-transaction state —
// and a committed transaction must keep its effects.
func TestAbortRestoresState(t *testing.T) {
	makeStores := func(t *testing.T) map[string]txnStore {
		return map[string]txnStore{
			"static":     NewStaticStore(facultySchema(t)),
			"rollback":   NewRollbackStore(facultySchema(t)),
			"copy":       NewCopyRollbackStore(facultySchema(t)),
			"historical": NewHistoricalStore(facultySchema(t)),
			"temporal":   NewTemporalStore(facultySchema(t)),
		}
	}
	var probes []temporal.Chronon
	for p := temporal.Chronon(0); p < 3000; p += 97 {
		probes = append(probes, p)
	}
	for name, s := range makeStores(t) {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(len(name))))
			clock := temporal.NewTickingClock(100)
			for trial := 0; trial < 20; trial++ {
				// Committed prefix.
				for i := 0; i < 10; i++ {
					randomOp(r, s, clock, i)
				}
				before := fingerprint(s, probes)

				// Aborted transaction.
				s.BeginTxn()
				for i := 0; i < 15; i++ {
					randomOp(r, s, clock, i+100)
				}
				s.AbortTxn()
				after := fingerprint(s, probes)
				if !equalStrings(before, after) {
					t.Fatalf("trial %d: abort did not restore state:\nbefore %v\nafter  %v",
						trial, before, after)
				}

				// Committed transaction keeps effects and can be fingerprinted.
				s.BeginTxn()
				for i := 0; i < 5; i++ {
					randomOp(r, s, clock, i+200)
				}
				s.CommitTxn()
			}
		})
	}
}

func TestNestedTxnPanics(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	s.BeginTxn()
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginTxn must panic")
		}
	}()
	s.BeginTxn()
}
