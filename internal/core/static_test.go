package core

import (
	"errors"
	"testing"

	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func TestStaticInsertGetScan(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if s.Kind() != Static || s.Event() {
		t.Fatal("kind/event wrong")
	}
	if err := s.Insert(fac("Merrie", "full")); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(fac("Tom", "associate")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, ok := s.Get(nameKey("Merrie"))
	if !ok || got[1].Str() != "full" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := s.Get(nameKey("Ghost")); ok {
		t.Fatal("Get on absent key must fail")
	}
	names := tupleNames(s.Snapshot(0))
	if !equalStrings(names, []string{"Merrie", "Tom"}) {
		t.Fatalf("Snapshot = %v", names)
	}
}

func TestStaticDuplicateKey(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if err := s.Insert(fac("Merrie", "full")); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(fac("Merrie", "associate")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
}

func TestStaticSchemaViolations(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if err := s.Insert(tuple.New(value.NewString("x"))); err == nil {
		t.Error("short tuple must be rejected")
	}
	if err := s.Insert(tuple.New(value.NewInt(1), value.NewInt(2))); err == nil {
		t.Error("mistyped tuple must be rejected")
	}
}

func TestStaticDeleteForgets(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if err := s.Insert(fac("Mike", "assistant")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(nameKey("Mike")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(nameKey("Mike")); !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("double delete: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The slot is recycled: past states are discarded completely.
	if err := s.Insert(fac("Anna", "full")); err != nil {
		t.Fatal(err)
	}
	if got := tupleNames(s.Snapshot(0)); !equalStrings(got, []string{"Anna"}) {
		t.Fatalf("Snapshot = %v", got)
	}
}

func TestStaticReplace(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if err := s.Insert(fac("Merrie", "associate")); err != nil {
		t.Fatal(err)
	}
	// The paper's §4.1 update: Merrie promoted; old rank forgotten.
	if err := s.Replace(nameKey("Merrie"), fac("Merrie", "full")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(nameKey("Merrie"))
	if got[1].Str() != "full" {
		t.Fatalf("rank = %v", got[1])
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Replace(nameKey("Ghost"), fac("Ghost", "x")); !errors.Is(err, ErrNoSuchTuple) {
		t.Fatalf("replace absent: %v", err)
	}
}

func TestStaticReplaceChangingKey(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if err := s.Insert(fac("Tom", "associate")); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(fac("Mike", "assistant")); err != nil {
		t.Fatal(err)
	}
	// Renaming Tom onto Mike's key must fail.
	if err := s.Replace(nameKey("Tom"), fac("Mike", "full")); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("key collision: %v", err)
	}
	// Renaming onto a fresh key succeeds and reindexes.
	if err := s.Replace(nameKey("Tom"), fac("Thomas", "full")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(nameKey("Tom")); ok {
		t.Error("old key still resolves")
	}
	if got, ok := s.Get(nameKey("Thomas")); !ok || got[1].Str() != "full" {
		t.Errorf("new key = %v, %v", got, ok)
	}
}

func TestStaticVersionsUniversalStamps(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	if err := s.Insert(fac("Merrie", "full")); err != nil {
		t.Fatal(err)
	}
	count := 0
	s.Versions(func(v Version) bool {
		count++
		if v.Valid != temporal.All || v.Trans != temporal.All {
			t.Errorf("static version stamps = %v", v)
		}
		return true
	})
	if count != 1 {
		t.Errorf("version count = %d", count)
	}
}

// TestStaticLimitations demonstrates §4.1: the four requests a static
// database cannot express. Each would require information the static store
// has already discarded or cannot represent.
func TestStaticLimitations(t *testing.T) {
	s := NewStaticStore(facultySchema(t))
	// History: Merrie was associate, later promoted.
	if err := s.Insert(fac("Merrie", "associate")); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace(nameKey("Merrie"), fac("Merrie", "full")); err != nil {
		t.Fatal(err)
	}

	// (1) Historical query: "What was Merrie's rank 2 years ago?" — the
	// previous rank is unrecoverable; only "full" remains.
	got, _ := s.Get(nameKey("Merrie"))
	if got[1].Str() != "full" {
		t.Fatal("current state wrong")
	}
	ranks := map[string]bool{}
	s.Scan(func(tp tuple.Tuple) bool {
		ranks[tp[1].Str()] = true
		return true
	})
	if ranks["associate"] {
		t.Error("static store retained a past state; it must not")
	}

	// (2) Trend analysis: "How did the number of faculty change over the
	// last 5 years?" — only one cardinality exists, the current one.
	if len(s.Snapshot(0)) != 1 {
		t.Error("exactly one state must exist")
	}

	// (3) Retroactive change: recording *when* the promotion took effect is
	// impossible — the schema has no temporal attribute and the store
	// accepts no valid time. The Replace signature itself (no time
	// parameter) is the demonstration; nothing further to assert.

	// (4) Postactive change: "James is joining next month" — inserting him
	// makes him current immediately; the store cannot distinguish.
	if err := s.Insert(fac("James", "assistant")); err != nil {
		t.Fatal(err)
	}
	names := tupleNames(s.Snapshot(0))
	if !equalStrings(names, []string{"James", "Merrie"}) {
		t.Fatalf("James is visible now, not next month: %v", names)
	}
}
