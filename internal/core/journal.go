package core

// journal collects inverse closures for the mutations a store performs
// inside a transaction. On abort the closures run in reverse (LIFO) order,
// restoring the store to its pre-transaction state; on commit they are
// discarded. While no transaction is active, recording is a no-op and every
// mutation is immediately final.
//
// The LIFO discipline is what makes position-based inverses exact: an
// inverse that re-adds a row allocates from the free list, whose top is —
// because every later mutation has already been undone — precisely the slot
// the original drop released.
type journal struct {
	undo   []func()
	active bool
}

// begin starts collecting inverses. Nested transactions are not supported;
// the transaction manager serializes writers.
func (j *journal) begin() {
	if j.active {
		panic("core: nested transaction on store")
	}
	j.active = true
	j.undo = j.undo[:0]
}

// commit discards the collected inverses, making the mutations final.
func (j *journal) commit() {
	j.active = false
	j.undo = j.undo[:0]
}

// abort runs the collected inverses in reverse order.
func (j *journal) abort() {
	for i := len(j.undo) - 1; i >= 0; i-- {
		j.undo[i]()
	}
	j.active = false
	j.undo = j.undo[:0]
}

// record registers an inverse for a mutation that just happened.
func (j *journal) record(fn func()) {
	if j.active {
		j.undo = append(j.undo, fn)
	}
}

// Transactional is implemented by every store: the transaction manager
// brackets multi-store updates with these calls so that a failing update
// leaves no partial effects anywhere.
type Transactional interface {
	// BeginTxn starts collecting undo information.
	BeginTxn()
	// CommitTxn makes all mutations since BeginTxn final.
	CommitTxn()
	// AbortTxn reverts all mutations since BeginTxn.
	AbortTxn()
}
