package obs

import (
	"fmt"
	"log"
	"strings"
	"time"
)

// Tracer observes execution spans: query phases, store operations, any
// region worth timing. Implementations must be safe for concurrent use.
//
// Instrumented code holds a possibly-nil Tracer and guards every use with
// a nil check, so an uninstrumented hot path costs one predictable branch
// and zero allocations:
//
//	var sp obs.Span
//	if t.tracer != nil {
//		sp = t.tracer.Start("execute")
//	}
//	... work ...
//	if sp != nil {
//		sp.Note("rows_scanned", n)
//		sp.End()
//	}
type Tracer interface {
	// Start begins a span. The returned Span is owned by the caller and
	// must be finished with End exactly once.
	Start(name string) Span
}

// Span is one timed region in flight.
type Span interface {
	// Note attaches a named integer observation (rows scanned, bytes
	// written) to the span.
	Note(key string, v int64)
	// End finishes the span, recording its duration.
	End()
}

// NewRegistryTracer returns a Tracer that aggregates spans into reg: span
// durations land in `<prefix>_span_seconds{span="<name>"}` histograms and
// notes accumulate into `<prefix>_span_note_total{span="<name>",key="<key>"}`
// counters. It keeps no per-span state beyond the start time, so it is
// suitable for production use.
func NewRegistryTracer(reg *Registry, prefix string) Tracer {
	return &registryTracer{reg: reg, prefix: prefix}
}

type registryTracer struct {
	reg    *Registry
	prefix string
}

func (t *registryTracer) Start(name string) Span {
	h := t.reg.Histogram(
		fmt.Sprintf("%s_span_seconds{span=%q}", t.prefix, name),
		"Span duration by span name.", TimeBuckets)
	return &registrySpan{t: t, name: name, dur: h, start: time.Now()}
}

type registrySpan struct {
	t     *registryTracer
	name  string
	dur   *Histogram
	start time.Time
}

func (s *registrySpan) Note(key string, v int64) {
	c := s.t.reg.Counter(
		fmt.Sprintf("%s_span_note_total{span=%q,key=%q}", s.t.prefix, s.name, key),
		"Sum of span note values by span and key.")
	if v > 0 {
		c.Add(uint64(v))
	}
}

func (s *registrySpan) End() { s.dur.ObserveSince(s.start) }

// NewLogTracer returns a Tracer that prints one line per finished span to
// the logger — the debugging flavor: `span=parse dur=112µs rows_scanned=40`.
func NewLogTracer(l *log.Logger) Tracer { return &logTracer{l: l} }

type logTracer struct{ l *log.Logger }

func (t *logTracer) Start(name string) Span {
	return &logSpan{l: t.l, name: name, start: time.Now()}
}

type logSpan struct {
	l     *log.Logger
	name  string
	notes strings.Builder
	start time.Time
}

func (s *logSpan) Note(key string, v int64) {
	fmt.Fprintf(&s.notes, " %s=%d", key, v)
}

func (s *logSpan) End() {
	s.l.Printf("span=%s dur=%s%s", s.name, time.Since(s.start), s.notes.String())
}

// MultiTracer fans spans out to several tracers; useful for logging and
// aggregating the same spans.
func MultiTracer(ts ...Tracer) Tracer {
	switch len(ts) {
	case 0:
		return nil
	case 1:
		return ts[0]
	}
	return multiTracer(ts)
}

type multiTracer []Tracer

func (m multiTracer) Start(name string) Span {
	spans := make(multiSpan, len(m))
	for i, t := range m {
		spans[i] = t.Start(name)
	}
	return spans
}

type multiSpan []Span

func (m multiSpan) Note(key string, v int64) {
	for _, s := range m {
		s.Note(key, v)
	}
}

func (m multiSpan) End() {
	for _, s := range m {
		s.End()
	}
}
