package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a fixed registry exercising every metric kind,
// labeled series, and histogram edge (empty, populated).
func goldenRegistry() *Registry {
	reg := NewRegistry()
	c := reg.Counter("tdb_server_commands_total", "Commands executed across all connections.")
	c.Add(7)
	reg.Counter(`tdb_core_writes_total{kind="static"}`, "Store write operations by relation kind.").Add(3)
	reg.Counter(`tdb_core_writes_total{kind="bitemporal"}`, "Store write operations by relation kind.").Add(9)
	g := reg.Gauge("tdb_server_connections_open", "Connections currently open.")
	g.Set(2)
	h := reg.Histogram("tdb_server_command_seconds", "Command latency.", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2.5)
	reg.Histogram("tdb_wal_fsync_seconds", "Fsync latency.", []float64{0.001, 0.01})
	return reg
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "exposition.golden", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "statz.golden", buf.Bytes())
}

// TestSnapshotRoundTrip confirms the JSON snapshot is parseable and the
// histogram shape is preserved.
func TestSnapshotRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var points []Point
	if err := json.Unmarshal(buf.Bytes(), &points); err != nil {
		t.Fatal(err)
	}
	byName := map[string]Point{}
	for _, p := range points {
		byName[p.Name] = p
	}
	if byName["tdb_server_commands_total"].Value != 7 {
		t.Errorf("counter round trip: %+v", byName["tdb_server_commands_total"])
	}
	h := byName["tdb_server_command_seconds"].Hist
	if h == nil || h.Count != 4 || len(h.Buckets) != 5 || h.Buckets[4] != 4 {
		t.Errorf("histogram round trip: %+v", h)
	}
}
