package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := goldenRegistry()
	mux := NewAdminMux(reg, AdminOptions{
		Statz: func() map[string]any { return map[string]any{"relations": 4} },
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE tdb_server_commands_total counter",
		"tdb_server_commands_total 7",
		`tdb_core_writes_total{kind="static"} 3`,
		`tdb_server_command_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, ts.URL+"/statz")
	if code != http.StatusOK {
		t.Fatalf("/statz status = %d", code)
	}
	var doc struct {
		Metrics []Point        `json:"metrics"`
		App     map[string]any `json:"app"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statz not JSON: %v", err)
	}
	if len(doc.Metrics) == 0 || doc.App["relations"] != float64(4) {
		t.Errorf("/statz content: %+v", doc)
	}

	code, _ = get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
}

func TestAdminHealthzUnhealthy(t *testing.T) {
	mux := NewAdminMux(NewRegistry(), AdminOptions{
		Health: func() error { return errors.New("wal: disk full") },
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "disk full") {
		t.Errorf("/healthz = %d %q", code, body)
	}
}
