package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a namespace of metrics. Lookup is get-or-create: the first
// call for a name materializes the metric, later calls (any package, any
// goroutine) return the same instance. Asking for an existing name with a
// different metric kind panics — metric registration is static program
// structure, and a kind clash is a programming error worth failing loudly
// on.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any // *Counter | *Gauge | *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// Default is the process-wide registry. Package-level instrumentation
// (core, wal, server, tquel) registers here; the admin endpoint exposes it.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it with the
// given help text on first use. name may carry a fixed label set:
// `tdb_core_writes_total{kind="static"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if m := r.lookup(name); m != nil {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a counter", name, m))
		}
		return c
	}
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if m := r.lookup(name); m != nil {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a gauge", name, m))
		}
		return g
	}
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds (upper bounds, increasing; nil means TimeBuckets)
// on first use. The bounds of an already registered histogram win.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if m := r.lookup(name); m != nil {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: %q already registered as %T, not a histogram", name, m))
		}
		return h
	}
	if bounds == nil {
		bounds = TimeBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %q: bucket bounds not increasing: %v", name, bounds))
		}
	}
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return r.register(name, h).(*Histogram)
}

func (r *Registry) lookup(name string) any {
	r.mu.RLock()
	m := r.metrics[name]
	r.mu.RUnlock()
	return m
}

// register stores m under name unless a concurrent caller won the race, in
// which case the winner is returned.
func (r *Registry) register(name string, m any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prior, ok := r.metrics[name]; ok {
		return prior
	}
	r.metrics[name] = m
	return m
}

// Namespace returns a view of the registry that prefixes every metric name
// with prefix + "_", so subsystems can register without repeating their
// stem: Default.Namespace("tdb_wal").Counter("records_total", ...) creates
// tdb_wal_records_total.
func (r *Registry) Namespace(prefix string) Namespace {
	return Namespace{r: r, prefix: prefix}
}

// Namespace is a prefix-scoped handle on a Registry.
type Namespace struct {
	r      *Registry
	prefix string
}

// Counter is Registry.Counter under the namespace prefix.
func (n Namespace) Counter(name, help string) *Counter {
	return n.r.Counter(n.prefix+"_"+name, help)
}

// Gauge is Registry.Gauge under the namespace prefix.
func (n Namespace) Gauge(name, help string) *Gauge {
	return n.r.Gauge(n.prefix+"_"+name, help)
}

// Histogram is Registry.Histogram under the namespace prefix.
func (n Namespace) Histogram(name, help string, bounds []float64) *Histogram {
	return n.r.Histogram(n.prefix+"_"+name, help, bounds)
}

// names returns all registered full names, sorted so that series sharing a
// base name (labeled variants) group together deterministically.
func (r *Registry) names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		bi, li := splitName(out[i])
		bj, lj := splitName(out[j])
		if bi != bj {
			return bi < bj
		}
		return li < lj
	})
	return out
}

// splitName separates `base{labels}` into base and the label body (without
// braces); a plain name has an empty label body.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}
