// Package obs is the observability subsystem: a concurrency-safe metrics
// registry (counters, gauges, fixed-bucket histograms), lightweight tracing
// hooks, and an HTTP admin handler. It is stdlib-only.
//
// Metrics are cheap enough to leave on permanently: counters and gauges are
// single atomic words, histograms are an atomic word per bucket. Tracing is
// opt-in per call site behind a nil check, so the hot path allocates
// nothing when no tracer is installed.
//
// Metric names carry their unit as a suffix (`_seconds`, `_bytes`) and
// cumulative metrics end in `_total`, following the Prometheus naming
// conventions. A name may carry a fixed label set in curly braces —
// `tdb_core_writes_total{kind="static"}` — which the text exposition
// renders as a labeled series under the shared base name.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use, but counters are normally obtained from a Registry so they appear
// in the exposition. All methods are safe for concurrent use.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the full registered name, labels included.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous value that can go up and down (connections
// open, bytes resident). All methods are safe for concurrent use.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the full registered name, labels included.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket histogram of float64 observations. Bounds
// are upper bounds in increasing order; an implicit +Inf bucket catches the
// rest. Observations are lock-free: one atomic add on the bucket, one on
// the count, and a CAS loop on the (float64-bits) sum.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// TimeBuckets is the default bucket layout for latency histograms, in
// seconds: 1µs up to 10s.
var TimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 10,
}

// CountBuckets is the default bucket layout for small-count histograms
// (batch sizes, fan-outs): powers of two from 1 to 1024.
var CountBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the cumulative count at each bound, then +Inf last —
// the shape the text exposition needs.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-th quantile (clamped to [0, 1]) from the bucket
// counts by linear interpolation within the containing bucket — the same
// estimate Prometheus's histogram_quantile computes. Observations landing
// in the +Inf bucket clamp to the last finite bound. Returns 0 for an
// empty histogram. Under concurrent observation the estimate reflects
// some recent state, not a consistent snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 && float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Name returns the full registered name, labels included.
func (h *Histogram) Name() string { return h.name }
