package obs

import (
	"bytes"
	"log"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentExactTotals hammers one counter, one gauge, and one
// histogram from 16 goroutines and asserts exact totals — run under -race
// this is the registry's concurrency contract.
func TestConcurrentExactTotals(t *testing.T) {
	const (
		workers = 16
		iters   = 10_000
	)
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Lookup inside the loop: the get-or-create path must be as
				// safe as the cached-pointer path.
				reg.Counter("hammer_total", "h").Inc()
				reg.Gauge("hammer_gauge", "h").Add(1)
				reg.Histogram("hammer_seconds", "h", []float64{0.5, 1, 2}).Observe(1)
			}
		}()
	}
	wg.Wait()

	const want = workers * iters
	if got := reg.Counter("hammer_total", "h").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("hammer_gauge", "h").Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	h := reg.Histogram("hammer_seconds", "h", nil)
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := h.Sum(); got != float64(want) {
		t.Errorf("histogram sum = %g, want %d", got, want)
	}
	// Every observation was 1.0: the 0.5 bucket stays empty, the rest are
	// cumulative-full.
	if buckets := h.Buckets(); buckets[0] != 0 || buckets[1] != want ||
		buckets[2] != want || buckets[3] != want {
		t.Errorf("histogram buckets = %v, want [0 %d %d %d]", buckets, want, want, want)
	}
}

func TestGaugeUpDown(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("conns_open", "open connections")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-5)
	if got := g.Value(); got != -5 {
		t.Fatalf("gauge = %d, want -5", got)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	// Bounds are inclusive upper bounds: 0.01 lands in the first bucket.
	want := []uint64{2, 3, 4, 5}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative buckets = %v, want %v", got, want)
		}
	}
	// Accumulate the expectation the same way Observe does (sequential
	// float64 adds), since constant folding would be exact where runtime
	// addition rounds.
	want2 := 0.0
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		want2 += v
	}
	if h.Sum() != want2 {
		t.Fatalf("sum = %g, want %g", h.Sum(), want2)
	}
}

func TestKindClashPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering x_total as a gauge")
		}
	}()
	reg.Gauge("x_total", "x")
}

func TestNamespace(t *testing.T) {
	reg := NewRegistry()
	ns := reg.Namespace("tdb_wal")
	c := ns.Counter("records_total", "records appended")
	c.Add(3)
	if got := reg.Counter("tdb_wal_records_total", "").Value(); got != 3 {
		t.Fatalf("namespaced counter not shared with full-name lookup: %d", got)
	}
	if c.Name() != "tdb_wal_records_total" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestRegistryTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewRegistryTracer(reg, "tdb_query")
	sp := tr.Start("execute")
	sp.Note("rows_scanned", 40)
	sp.Note("rows_scanned", 2)
	sp.End()
	sp = tr.Start("execute")
	sp.End()

	h := reg.Histogram(`tdb_query_span_seconds{span="execute"}`, "", nil)
	if h.Count() != 2 {
		t.Fatalf("span histogram count = %d, want 2", h.Count())
	}
	c := reg.Counter(`tdb_query_span_note_total{span="execute",key="rows_scanned"}`, "")
	if c.Value() != 42 {
		t.Fatalf("note counter = %d, want 42", c.Value())
	}
}

func TestLogTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewLogTracer(log.New(&buf, "", 0))
	sp := tr.Start("parse")
	sp.Note("stmts", 2)
	sp.End()
	out := buf.String()
	if !strings.Contains(out, "span=parse") || !strings.Contains(out, "stmts=2") {
		t.Fatalf("log tracer output = %q", out)
	}
}

func TestMultiTracer(t *testing.T) {
	reg1, reg2 := NewRegistry(), NewRegistry()
	tr := MultiTracer(NewRegistryTracer(reg1, "a"), NewRegistryTracer(reg2, "b"))
	sp := tr.Start("s")
	sp.End()
	if reg1.Histogram(`a_span_seconds{span="s"}`, "", nil).Count() != 1 ||
		reg2.Histogram(`b_span_seconds{span="s"}`, "", nil).Count() != 1 {
		t.Fatal("multi tracer did not fan out")
	}
	if MultiTracer() != nil {
		t.Fatal("empty MultiTracer should be nil")
	}
}
