package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteText writes every metric in the Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers once per base name, then one
// line per series, sorted by name so output is deterministic and
// golden-testable.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, name := range r.names() {
		m := r.lookup(name)
		base, labels := splitName(name)
		if base != lastBase {
			help, typ := describe(m)
			if help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", base, help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, typ)
			lastBase = base
		}
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s %d\n", seriesName(base, labels, ""), v.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s %d\n", seriesName(base, labels, ""), v.Value())
		case *Histogram:
			bounds, cum := v.Bounds(), v.Buckets()
			for i, b := range bounds {
				le := strconv.FormatFloat(b, 'g', -1, 64)
				fmt.Fprintf(bw, "%s %d\n", seriesName(base+"_bucket", labels, `le="`+le+`"`), cum[i])
			}
			fmt.Fprintf(bw, "%s %d\n", seriesName(base+"_bucket", labels, `le="+Inf"`), cum[len(cum)-1])
			fmt.Fprintf(bw, "%s %s\n", seriesName(base+"_sum", labels, ""), strconv.FormatFloat(v.Sum(), 'g', -1, 64))
			fmt.Fprintf(bw, "%s %d\n", seriesName(base+"_count", labels, ""), v.Count())
		}
	}
	return bw.Flush()
}

// seriesName joins a metric name with its fixed labels and an extra label
// (the histogram `le`), producing `name`, `name{a="b"}`, or
// `name{a="b",le="0.1"}`.
func seriesName(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

func describe(m any) (help, typ string) {
	switch v := m.(type) {
	case *Counter:
		return v.help, "counter"
	case *Gauge:
		return v.help, "gauge"
	case *Histogram:
		return v.help, "histogram"
	}
	return "", "untyped"
}

// Point is one metric in a JSON snapshot. Exactly one of Value (counter),
// Gauge, or Histogram is populated, keyed by Type.
type Point struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value,omitempty"`
	Gauge int64  `json:"gauge,omitempty"`
	Hist  *Dist  `json:"histogram,omitempty"`
}

// Dist is a histogram's JSON form: cumulative bucket counts keyed by their
// upper bound (the final +Inf bucket equals Count).
type Dist struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

// Snapshot returns every metric's current value, sorted by name.
func (r *Registry) Snapshot() []Point {
	names := r.names()
	out := make([]Point, 0, len(names))
	for _, name := range names {
		switch v := r.lookup(name).(type) {
		case *Counter:
			out = append(out, Point{Name: name, Type: "counter", Help: v.help, Value: v.Value()})
		case *Gauge:
			out = append(out, Point{Name: name, Type: "gauge", Help: v.help, Gauge: v.Value()})
		case *Histogram:
			out = append(out, Point{Name: name, Type: "histogram", Help: v.help, Hist: &Dist{
				Count:   v.Count(),
				Sum:     v.Sum(),
				Bounds:  v.Bounds(),
				Buckets: v.Buckets(),
			}})
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON (the /statz format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
