package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminOptions configure NewAdminMux.
type AdminOptions struct {
	// Health reports process health; nil means always healthy. A non-nil
	// error turns /healthz into a 503 carrying the error text.
	Health func() error
	// Statz supplies extra application state (database stats, build info)
	// merged into the /statz document under "app".
	Statz func() map[string]any
}

// NewAdminMux builds the admin endpoint over a registry:
//
//	/metrics      Prometheus text exposition
//	/healthz      "ok" or 503 with the failure
//	/statz        JSON snapshot of every metric (+ app state)
//	/debug/pprof  the standard runtime profiles
//
// The mux is intended for a loopback or otherwise trusted listener; it
// performs no authentication.
func NewAdminMux(reg *Registry, opts AdminOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Health != nil {
			if err := opts.Health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		doc := map[string]any{"metrics": reg.Snapshot()}
		if opts.Statz != nil {
			doc["app"] = opts.Statz()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
