package algebra

import (
	"errors"
	"math/rand"
	"testing"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

var faculty = func() *schema.Schema {
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
	)
	keyed, err := s.WithKey("name")
	if err != nil {
		panic(err)
	}
	return keyed
}()

func fac(name, rank string) tuple.Tuple {
	return tuple.New(value.NewString(name), value.NewString(rank))
}

func iv(a, b temporal.Chronon) temporal.Interval { return temporal.Interval{From: a, To: b} }

func rel(rows ...Row) *Relation {
	return &Relation{Schema: faculty, Rows: rows}
}

func TestScanStaticAndHistorical(t *testing.T) {
	st := core.NewStaticStore(faculty)
	if err := st.Insert(fac("Merrie", "full")); err != nil {
		t.Fatal(err)
	}
	r, err := Scan(st, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Valid != temporal.All {
		t.Fatalf("static scan = %+v", r.Rows)
	}
	// As-of on a static relation is a taxonomy violation.
	if _, err := Scan(st, 5, true); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("as of static: %v", err)
	}

	hs := core.NewHistoricalStore(faculty)
	if err := hs.Assert(fac("Merrie", "associate"), iv(10, 20)); err != nil {
		t.Fatal(err)
	}
	r, err = Scan(hs, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Valid != iv(10, 20) {
		t.Fatalf("historical scan = %+v", r.Rows)
	}
	if _, err := Scan(hs, 5, true); !errors.Is(err, ErrNoRollback) {
		t.Fatalf("as of historical: %v", err)
	}
}

func TestScanRollbackAndTemporal(t *testing.T) {
	rb := core.NewRollbackStore(faculty)
	if err := rb.Insert(fac("A", "x"), 100); err != nil {
		t.Fatal(err)
	}
	if err := rb.Replace(tuple.New(value.NewString("A")), fac("A", "y"), 200); err != nil {
		t.Fatal(err)
	}
	cur, err := Scan(rb, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Rows) != 1 || cur.Rows[0].Data[1].Str() != "y" {
		t.Fatalf("current = %+v", cur.Rows)
	}
	old, err := Scan(rb, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Rows) != 1 || old.Rows[0].Data[1].Str() != "x" {
		t.Fatalf("as of 150 = %+v", old.Rows)
	}

	ts := core.NewTemporalStore(faculty)
	if err := ts.Assert(fac("A", "x"), iv(0, 50), 100); err != nil {
		t.Fatal(err)
	}
	if err := ts.Assert(fac("A", "y"), iv(0, 50), 200); err != nil {
		t.Fatal(err)
	}
	cur, err = Scan(ts, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.Rows) != 1 || cur.Rows[0].Data[1].Str() != "y" || cur.Rows[0].Valid != iv(0, 50) {
		t.Fatalf("temporal current = %+v", cur.Rows)
	}
	old, err = Scan(ts, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Rows) != 1 || old.Rows[0].Data[1].Str() != "x" {
		t.Fatalf("temporal as of 150 = %+v", old.Rows)
	}
}

func TestSelectProject(t *testing.T) {
	r := rel(
		Row{Data: fac("Merrie", "full"), Valid: iv(0, 10)},
		Row{Data: fac("Tom", "associate"), Valid: iv(5, 15)},
	)
	sel, err := Select(r, func(row Row) (bool, error) {
		return row.Data[0].Str() == "Merrie", nil
	})
	if err != nil || len(sel.Rows) != 1 {
		t.Fatalf("select = %+v, %v", sel, err)
	}
	proj, err := Project(r, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema.Attr(0).Name != "rank" || len(proj.Rows) != 2 {
		t.Fatalf("project = %+v", proj)
	}
	// Projection deduplicates identical (data, valid) rows.
	dup := rel(
		Row{Data: fac("A", "x"), Valid: iv(0, 10)},
		Row{Data: fac("B", "x"), Valid: iv(0, 10)},
	)
	proj, err = Project(dup, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Rows) != 1 {
		t.Fatalf("dedup failed: %+v", proj.Rows)
	}
	// Select propagates predicate errors.
	boom := errors.New("boom")
	if _, err := Select(r, func(Row) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Errorf("select error: %v", err)
	}
}

func TestProductIntersectsValid(t *testing.T) {
	a := rel(Row{Data: fac("Merrie", "full"), Valid: iv(10, 30)})
	b := rel(
		Row{Data: fac("Tom", "associate"), Valid: iv(20, 40)},  // overlaps
		Row{Data: fac("Mike", "assistant"), Valid: iv(50, 60)}, // disjoint
	)
	p, err := Product(a, b, "f1", "f2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 1 {
		t.Fatalf("product rows = %+v", p.Rows)
	}
	if p.Rows[0].Valid != iv(20, 30) {
		t.Errorf("derived valid = %v", p.Rows[0].Valid)
	}
	if p.Schema.Index("f1.name") != 0 || p.Schema.Index("f2.rank") != 3 {
		t.Errorf("product schema = %v", p.Schema)
	}
	if len(p.Rows[0].Data) != 4 {
		t.Errorf("row arity = %d", len(p.Rows[0].Data))
	}
}

func TestUnionDifference(t *testing.T) {
	a := rel(
		Row{Data: fac("A", "x"), Valid: iv(0, 10)},
		Row{Data: fac("B", "y"), Valid: iv(0, 10)},
	)
	b := rel(
		Row{Data: fac("B", "y"), Valid: iv(0, 10)},
		Row{Data: fac("C", "z"), Valid: iv(0, 10)},
	)
	u, err := Union(a, b)
	if err != nil || len(u.Rows) != 3 {
		t.Fatalf("union = %+v, %v", u, err)
	}
	d, err := Difference(a, b)
	if err != nil || len(d.Rows) != 1 || d.Rows[0].Data[0].Str() != "A" {
		t.Fatalf("difference = %+v, %v", d, err)
	}
	other := &Relation{Schema: schema.MustNew(schema.Attribute{Name: "x", Type: value.Int})}
	if _, err := Union(a, other); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("union mismatch: %v", err)
	}
	if _, err := Difference(a, other); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("difference mismatch: %v", err)
	}
	// Same data, different valid period: both kept.
	c := rel(Row{Data: fac("A", "x"), Valid: iv(20, 30)})
	u, err = Union(a, c)
	if err != nil || len(u.Rows) != 3 {
		t.Fatalf("union with shifted valid = %+v, %v", u, err)
	}
}

func TestTimeSliceAndWhen(t *testing.T) {
	r := rel(
		Row{Data: fac("A", "x"), Valid: iv(0, 10)},
		Row{Data: fac("B", "y"), Valid: iv(5, 15)},
	)
	s := TimeSlice(r, 12)
	if len(s.Rows) != 1 || s.Rows[0].Data[0].Str() != "B" {
		t.Fatalf("slice = %+v", s.Rows)
	}
	w := When(r, iv(8, 9))
	if len(w.Rows) != 2 {
		t.Fatalf("when = %+v", w.Rows)
	}
	w = When(r, iv(40, 50))
	if len(w.Rows) != 0 {
		t.Fatalf("when disjoint = %+v", w.Rows)
	}
}

func TestCoalesceMergesValueEquivalentRows(t *testing.T) {
	r := rel(
		Row{Data: fac("A", "x"), Valid: iv(0, 10)},
		Row{Data: fac("A", "x"), Valid: iv(10, 20)}, // meets
		Row{Data: fac("A", "x"), Valid: iv(30, 40)}, // gap
		Row{Data: fac("A", "y"), Valid: iv(5, 25)},  // different data
	)
	c := Coalesce(r)
	SortRows(c)
	if len(c.Rows) != 3 {
		t.Fatalf("coalesced = %+v", c.Rows)
	}
	if c.Rows[0].Valid != iv(0, 20) || c.Rows[1].Valid != iv(30, 40) || c.Rows[2].Valid != iv(5, 25) {
		t.Fatalf("coalesced = %+v", c.Rows)
	}
	// Event relations pass through unchanged.
	er := &Relation{Schema: faculty, Event: true, Rows: []Row{
		{Data: fac("A", "x"), Valid: temporal.At(5)},
		{Data: fac("A", "x"), Valid: temporal.At(6)},
	}}
	if ec := Coalesce(er); len(ec.Rows) != 2 {
		t.Fatalf("event coalesce = %+v", ec.Rows)
	}
}

// Coalescing must preserve time-slice semantics at every instant.
func TestCoalescePreservesSlicesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		var rows []Row
		for i, n := 0, r.Intn(12); i < n; i++ {
			from := temporal.Chronon(r.Intn(40))
			rows = append(rows, Row{
				Data:  fac(string(rune('a'+r.Intn(3))), string(rune('x'+r.Intn(2)))),
				Valid: iv(from, from+temporal.Chronon(r.Intn(15))),
			})
		}
		in := rel(rows...)
		out := Coalesce(in)
		for probe := temporal.Chronon(0); probe < 60; probe++ {
			a := TimeSlice(in, probe)
			b := TimeSlice(out, probe)
			seen := map[string]bool{}
			for _, row := range a.Rows {
				seen[row.Data.String()] = true
			}
			seenB := map[string]bool{}
			for _, row := range b.Rows {
				seenB[row.Data.String()] = true
				if !seen[row.Data.String()] {
					t.Fatalf("trial %d: coalesce invented %v at %d", trial, row.Data, probe)
				}
			}
			for k := range seen {
				if !seenB[k] {
					t.Fatalf("trial %d: coalesce lost %s at %d", trial, k, probe)
				}
			}
		}
		// Idempotent.
		again := Coalesce(out)
		if len(again.Rows) != len(out.Rows) {
			t.Fatalf("trial %d: coalesce not idempotent", trial)
		}
	}
}

func TestSortRowsDeterministic(t *testing.T) {
	r := rel(
		Row{Data: fac("B", "y"), Valid: iv(0, 10)},
		Row{Data: fac("A", "x"), Valid: iv(5, 15)},
		Row{Data: fac("A", "x"), Valid: iv(0, 10)},
	)
	SortRows(r)
	if r.Rows[0].Data[0].Str() != "A" || r.Rows[0].Valid != iv(0, 10) {
		t.Fatalf("sorted = %+v", r.Rows)
	}
	if r.Rows[2].Data[0].Str() != "B" {
		t.Fatalf("sorted = %+v", r.Rows)
	}
}
