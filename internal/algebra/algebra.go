// Package algebra implements a small relational algebra extended with the
// temporal operators the paper's query examples need: rollback (timeslice
// over transaction time), valid-time slicing and overlap filtering, a
// temporal join whose derived valid period is the intersection of its
// operands', and coalescing of value-equivalent rows. Derived relations are
// materialized — query results in the paper are themselves relations that
// "may be used in further queries", and materialization keeps that closure
// property simple.
package algebra

import (
	"errors"
	"fmt"
	"sort"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/temporal"
)

// ErrNoRollback reports an as-of request against a relation kind that does
// not record transaction time (Figure 10's left column).
var ErrNoRollback = errors.New("algebra: relation kind does not support rollback")

// ErrSchemaMismatch reports a set operation over incompatible schemas.
var ErrSchemaMismatch = errors.New("algebra: schemas are not union-compatible")

// Row is one derived tuple with its valid period. Rows from relations
// without valid time carry the universal interval.
type Row struct {
	Data  tuple.Tuple
	Valid temporal.Interval
}

// Relation is a materialized derived relation.
type Relation struct {
	Schema *schema.Schema
	Event  bool
	Rows   []Row
}

// Scan materializes the versions of a store visible under the given
// rollback setting. With hasAsOf false, the current belief is scanned; with
// hasAsOf true, the state as of the given transaction time — an error for
// kinds that keep no transaction time, making the taxonomy's capability
// boundary an executable fact.
func Scan(st core.Store, asOf temporal.Chronon, hasAsOf bool) (*Relation, error) {
	rel := &Relation{Schema: st.Schema(), Event: st.Event()}
	if hasAsOf && !st.Kind().SupportsRollback() {
		return nil, fmt.Errorf("%w: %s", ErrNoRollback, st.Kind())
	}
	switch s := st.(type) {
	case *core.RollbackStore:
		if hasAsOf {
			for _, t := range s.AsOf(asOf) {
				rel.Rows = append(rel.Rows, Row{Data: t, Valid: temporal.All})
			}
		} else {
			s.Scan(func(t tuple.Tuple) bool {
				rel.Rows = append(rel.Rows, Row{Data: t, Valid: temporal.All})
				return true
			})
		}
	case *core.CopyRollbackStore:
		if !hasAsOf {
			asOf = temporal.Forever - 1
		}
		for _, t := range s.AsOf(asOf) {
			rel.Rows = append(rel.Rows, Row{Data: t, Valid: temporal.All})
		}
	case *core.TemporalStore:
		if !hasAsOf {
			asOf = temporal.Forever - 1
		}
		for _, v := range s.AsOf(asOf) {
			rel.Rows = append(rel.Rows, Row{Data: v.Data, Valid: v.Valid})
		}
	default:
		// Static and historical: current belief only.
		st.Versions(func(v core.Version) bool {
			rel.Rows = append(rel.Rows, Row{Data: v.Data, Valid: v.Valid})
			return true
		})
	}
	return rel, nil
}

// Select returns the rows satisfying pred.
func Select(r *Relation, pred func(Row) (bool, error)) (*Relation, error) {
	out := &Relation{Schema: r.Schema, Event: r.Event}
	for _, row := range r.Rows {
		ok, err := pred(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Project returns the relation restricted to the attributes at the given
// positions, preserving valid periods and removing duplicate rows (set
// semantics, as in Quel's retrieve).
func Project(r *Relation, indices []int) (*Relation, error) {
	sch, err := r.Schema.Project(indices)
	if err != nil {
		return nil, err
	}
	out := &Relation{Schema: sch, Event: r.Event}
	seen := make(map[string]bool, len(r.Rows))
	for _, row := range r.Rows {
		nr := Row{Data: row.Data.Project(indices), Valid: row.Valid}
		k := rowKey(nr)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// Product returns the temporal cartesian product: tuples concatenate and
// the derived valid period is the intersection of the operands' periods
// (TQuel's default valid clause for multi-variable queries). Pairs with
// disjoint valid periods produce no row — two facts that never held
// simultaneously cannot join.
func Product(a, b *Relation, aPrefix, bPrefix string) (*Relation, error) {
	sch, err := schema.Concat(a.Schema, b.Schema, aPrefix, bPrefix)
	if err != nil {
		return nil, err
	}
	out := &Relation{Schema: sch, Event: a.Event && b.Event}
	for _, ra := range a.Rows {
		for _, rb := range b.Rows {
			v := ra.Valid.Intersect(rb.Valid)
			if v.IsEmpty() && !ra.Valid.IsEmpty() && !rb.Valid.IsEmpty() {
				continue
			}
			out.Rows = append(out.Rows, Row{Data: tuple.Concat(ra.Data, rb.Data), Valid: v})
		}
	}
	return out, nil
}

// Union returns the set union of two union-compatible relations.
func Union(a, b *Relation) (*Relation, error) {
	if !a.Schema.Equal(b.Schema) {
		return nil, ErrSchemaMismatch
	}
	out := &Relation{Schema: a.Schema, Event: a.Event && b.Event}
	seen := map[string]bool{}
	for _, rs := range [][]Row{a.Rows, b.Rows} {
		for _, row := range rs {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Difference returns the rows of a absent from b.
func Difference(a, b *Relation) (*Relation, error) {
	if !a.Schema.Equal(b.Schema) {
		return nil, ErrSchemaMismatch
	}
	drop := make(map[string]bool, len(b.Rows))
	for _, row := range b.Rows {
		drop[rowKey(row)] = true
	}
	out := &Relation{Schema: a.Schema, Event: a.Event}
	for _, row := range a.Rows {
		if !drop[rowKey(row)] {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// TimeSlice keeps the rows whose valid period contains t.
func TimeSlice(r *Relation, t temporal.Chronon) *Relation {
	out := &Relation{Schema: r.Schema, Event: r.Event}
	for _, row := range r.Rows {
		if row.Valid.Contains(t) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// When keeps the rows whose valid period overlaps q.
func When(r *Relation, q temporal.Interval) *Relation {
	out := &Relation{Schema: r.Schema, Event: r.Event}
	for _, row := range r.Rows {
		if row.Valid.Overlaps(q) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Coalesce merges value-equivalent rows whose valid periods overlap or
// meet, producing the canonical minimal representation of an interval
// relation. Event relations are returned unchanged (instants don't merge).
func Coalesce(r *Relation) *Relation {
	if r.Event {
		out := &Relation{Schema: r.Schema, Event: true}
		out.Rows = append(out.Rows, r.Rows...)
		return out
	}
	groups := map[uint64][]int{}
	order := []uint64{}
	for i, row := range r.Rows {
		h := row.Data.Hash64()
		if _, ok := groups[h]; !ok {
			order = append(order, h)
		}
		groups[h] = append(groups[h], i)
	}
	out := &Relation{Schema: r.Schema, Event: false}
	for _, h := range order {
		idxs := groups[h]
		// Hash groups may contain distinct tuples on collision; split.
		for len(idxs) > 0 {
			head := r.Rows[idxs[0]]
			var ivs []temporal.Interval
			rest := idxs[:0]
			for _, i := range idxs {
				if tuple.Equal(r.Rows[i].Data, head.Data) {
					ivs = append(ivs, r.Rows[i].Valid)
				} else {
					rest = append(rest, i)
				}
			}
			for _, iv := range temporal.Coalesce(ivs) {
				out.Rows = append(out.Rows, Row{Data: head.Data, Valid: iv})
			}
			idxs = rest
		}
	}
	return out
}

// SortRows orders the rows deterministically (by data rendering, then valid
// period) for stable figure output and comparison.
func SortRows(r *Relation) {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		if as, bs := a.Data.String(), b.Data.String(); as != bs {
			return as < bs
		}
		if a.Valid.From != b.Valid.From {
			return a.Valid.From < b.Valid.From
		}
		return a.Valid.To < b.Valid.To
	})
}

func rowKey(r Row) string {
	return fmt.Sprintf("%v|%d|%d", r.Data, r.Valid.From, r.Valid.To)
}
