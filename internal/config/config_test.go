package config

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

func TestBoolSemantics(t *testing.T) {
	// The unified boolean must accept every spelling the historical per-site
	// parsers accepted: "1"/"true"/"yes" (segment style) and anything but
	// ""/"0"/"false" (planner style), plus the "no"/"off" negatives.
	cases := map[string]bool{
		"":      false,
		"0":     false,
		"false": false,
		"FALSE": false,
		"no":    false,
		"off":   false,
		"1":     true,
		"true":  true,
		"yes":   true,
		"on":    true,
		"2":     true,
	}
	for v, want := range cases {
		t.Setenv("TDB_TEST_BOOL", v)
		if got := Bool("TDB_TEST_BOOL"); got != want {
			t.Errorf("Bool(%q) = %v, want %v", v, got, want)
		}
	}
}

func TestIntAccessors(t *testing.T) {
	t.Setenv("TDB_TEST_INT", "-3")
	if got := Int("TDB_TEST_INT", 7); got != -3 {
		t.Errorf("Int accepts negatives: got %d", got)
	}
	if got := PosInt("TDB_TEST_INT", 7); got != 7 {
		t.Errorf("PosInt rejects negatives: got %d", got)
	}
	t.Setenv("TDB_TEST_INT", "bogus")
	if got := Int("TDB_TEST_INT", 7); got != 7 {
		t.Errorf("Int falls back on malformed input: got %d", got)
	}
	t.Setenv("TDB_TEST_INT", "0")
	if got := Int64("TDB_TEST_INT", 9); got != 0 {
		t.Errorf("Int64 accepts zero (cache-off ablation): got %d", got)
	}
}

func TestFloatAndDuration(t *testing.T) {
	t.Setenv("TDB_TEST_F", "0")
	if got := PosFloat("TDB_TEST_F", 4096); got != 4096 {
		t.Errorf("PosFloat rejects zero: got %g", got)
	}
	t.Setenv("TDB_TEST_F", "12.5")
	if got := PosFloat("TDB_TEST_F", 4096); got != 12.5 {
		t.Errorf("PosFloat: got %g", got)
	}
	t.Setenv("TDB_TEST_D", "2ms")
	if got := PosDuration("TDB_TEST_D", 0); got != 2*time.Millisecond {
		t.Errorf("PosDuration: got %v", got)
	}
	t.Setenv("TDB_TEST_D", "-1s")
	if got := PosDuration("TDB_TEST_D", time.Second); got != time.Second {
		t.Errorf("PosDuration rejects negatives: got %v", got)
	}
}

func TestRegistryAndSnapshot(t *testing.T) {
	ks := Knobs()
	if len(ks) < 10 {
		t.Fatalf("expected >=10 registered knobs, got %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1].Env >= ks[i].Env {
			t.Fatalf("Knobs not sorted: %q >= %q", ks[i-1].Env, ks[i].Env)
		}
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if !strings.HasPrefix(k.Env, "TDB_") {
			t.Errorf("knob %q lacks TDB_ prefix", k.Env)
		}
		if seen[k.Env] {
			t.Errorf("knob %q registered twice", k.Env)
		}
		seen[k.Env] = true
		if k.Doc == "" || k.Kind == "" {
			t.Errorf("knob %q missing doc or kind", k.Env)
		}
	}

	t.Setenv(EnvSegmentRows, "128")
	snap := Snapshot()
	if snap[EnvSegmentRows] != "128" {
		t.Errorf("Snapshot shows env value: got %q", snap[EnvSegmentRows])
	}
	if got := snap[EnvCacheBytes]; !strings.Contains(got, "(default)") {
		t.Errorf("Snapshot marks defaults: got %q", got)
	}
	if len(snap) != len(ks) {
		t.Errorf("Snapshot covers all knobs: %d vs %d", len(snap), len(ks))
	}
}

// Every registered knob must have a row in the operator-facing table in
// docs/config.md, with its kind and default, so the doc cannot silently
// fall behind the registry.
func TestConfigDocTable(t *testing.T) {
	doc, err := os.ReadFile("../../docs/config.md")
	if err != nil {
		t.Fatalf("docs/config.md: %v", err)
	}
	text := string(doc)
	for _, k := range Knobs() {
		row := fmt.Sprintf("| `%s` | %s | %s |", k.Env, k.Kind, k.Default)
		if !strings.Contains(text, row) {
			t.Errorf("docs/config.md missing or stale row for %s\nwant prefix: %s", k.Env, row)
		}
	}
}
