// Package config is the single registry of the TDB_* environment knobs.
//
// Before this package existed every subsystem parsed its own environment
// variables with slightly different spellings and tolerances (segment's
// boolean accepted "1"/"true"/"yes", the planner's anything but "0"/"false";
// some integers accepted zero, others only positives). Each knob is now
// declared exactly once, with a kind, a default, and one line of
// documentation; subsystems read through the typed accessors and the
// operational surfaces (the `config` session command, /statz's "config"
// section, docs/config.md) render the same table.
//
// Precedence everywhere stays: explicit option/setter → environment knob →
// registered default. The accessors only implement the middle step; they
// never cache, so tests may flip knobs with t.Setenv at any point.
package config

import (
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Knob is one registered environment knob.
type Knob struct {
	Env     string // variable name, e.g. "TDB_CACHE_BYTES"
	Kind    string // "bool", "int", "int64", "float", "duration"
	Default string // rendered default ("" when the subsystem default applies)
	Doc     string // one-line description for the knob table
}

var registry []Knob

// register records a knob and returns its name, so declarations double as
// the canonical Env* constants.
func register(k Knob) string {
	registry = append(registry, k)
	return k.Env
}

// The knobs, one declaration each. Subsystems import these names instead of
// repeating the string, so a grep for the constant finds every consumer.
var (
	// Session (tquel) knobs: initial values for new sessions; the Session
	// setters (DisablePlanner, DisableStats, SetParallelism) override.
	EnvDisablePlanner = register(Knob{Env: "TDB_DISABLE_PLANNER", Kind: "bool", Default: "off",
		Doc: "Open sessions with the query planner disabled (naive nested-loop ablation)."})
	EnvDisableStats = register(Knob{Env: "TDB_DISABLE_STATS", Kind: "bool", Default: "off",
		Doc: "Planner ignores temporal statistics and falls back to v1 heuristics."})
	EnvParallel = register(Knob{Env: "TDB_PARALLEL", Kind: "int", Default: "0 (GOMAXPROCS)",
		Doc: "Worker budget for parallel retrieve execution; <=1 forces the serial path."})
	EnvParallelMinCost = register(Knob{Env: "TDB_PARALLEL_MIN_COST", Kind: "float", Default: "4096",
		Doc: "Estimated-work threshold above which a stats-guided plan fans out over workers."})

	// Database (Options) knobs: env is the fallback when the Options field
	// is zero.
	EnvCacheBytes = register(Knob{Env: "TDB_CACHE_BYTES", Kind: "int64", Default: "67108864",
		Doc: "Query result cache budget in bytes; 0 or negative disables the cache."})
	EnvLoadChunk = register(Knob{Env: "TDB_LOAD_CHUNK", Kind: "int", Default: "8192",
		Doc: "Rows per bulk-load transaction (Relation.Load chunk size)."})
	EnvGroupCommitBatch = register(Knob{Env: "TDB_GROUP_COMMIT_BATCH", Kind: "int", Default: "64",
		Doc: "Max transaction records one group-commit flush coalesces onto a WAL write."})
	EnvGroupCommitWait = register(Knob{Env: "TDB_GROUP_COMMIT_WAIT", Kind: "duration", Default: "0",
		Doc: "Extra linger before a group-commit flush, widening the coalescing window."})

	// Storage knobs, read at relation creation.
	EnvDisableSegments = register(Knob{Env: "TDB_DISABLE_SEGMENTS", Kind: "bool", Default: "off",
		Doc: "Keep append-only history in the flat row tail (columnar-segment ablation)."})
	EnvSegmentRows = register(Knob{Env: "TDB_SEGMENT_ROWS", Kind: "int", Default: "8192",
		Doc: "Rows per sealed columnar segment."})
)

// Knobs returns the registered knobs sorted by name.
func Knobs() []Knob {
	out := append([]Knob(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Env < out[j].Env })
	return out
}

// Snapshot renders every knob's effective value — the environment setting
// when present, the registered default otherwise — for the `config` command
// and /statz's "config" section.
func Snapshot() map[string]string {
	out := make(map[string]string, len(registry))
	for _, k := range registry {
		if v, ok := os.LookupEnv(k.Env); ok && v != "" {
			out[k.Env] = v
		} else {
			out[k.Env] = k.Default + " (default)"
		}
	}
	return out
}

// Bool reads a boolean knob: set and not one of ""/"0"/"false"/"no"/"off"
// (case-insensitive) means true. This unifies the two historical spellings
// ("1"/"true"/"yes" vs. anything-but-"0"/"false"); every value the old
// parsers accepted keeps its meaning.
func Bool(env string) bool {
	v := strings.ToLower(os.Getenv(env))
	switch v {
	case "", "0", "false", "no", "off":
		return false
	}
	return true
}

// Int reads an integer knob, returning def when unset or malformed. Any
// parseable value is accepted, including zero and negatives.
func Int(env string, def int) int {
	if v := os.Getenv(env); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// PosInt reads an integer knob that must be strictly positive, returning
// def otherwise.
func PosInt(env string, def int) int {
	if v := os.Getenv(env); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// Int64 reads a 64-bit integer knob, returning def when unset or
// malformed. Any parseable value is accepted, including zero and negatives
// (TDB_CACHE_BYTES=0 is the cache-off ablation).
func Int64(env string, def int64) int64 {
	if v := os.Getenv(env); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// PosFloat reads a float knob that must be strictly positive, returning
// def otherwise.
func PosFloat(env string, def float64) float64 {
	if v := os.Getenv(env); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return def
}

// PosDuration reads a duration knob ("5ms", "1s") that must be strictly
// positive, returning def otherwise.
func PosDuration(env string, def time.Duration) time.Duration {
	if v := os.Getenv(env); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
	}
	return def
}
