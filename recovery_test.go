package tdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/vfs"
	"tdb/temporal"
)

// corruptFile flips a byte in the middle of a file.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// A primary snapshot that rots after a checkpoint is survivable: the
// fallback is a same-era copy, and the log's epoch proves it consistent.
func TestRecoveryFallbackOnCorruptPrimary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes give the log a header carrying the new epoch.
	if err := db.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("F", "f"), temporal.Date(1995, 1, 1), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	before := stateDigest(t, db)
	db.Close()
	corruptFile(t, path+".snap")

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatalf("fallback recovery differs:\nbefore %v\nafter  %v", before, got)
	}
	ri := db2.Stats().Recovery
	if !ri.UsedFallback || !ri.SnapshotLoaded {
		t.Fatalf("recovery info = %+v, want fallback+snapshot", ri)
	}
	if ri.Replayed != 1 {
		t.Fatalf("replayed %d records over the fallback, want 1", ri.Replayed)
	}
	// The fallback was promoted back to primary: another corruption of the
	// (new) primary is survivable again.
	db2.Close()
	corruptFile(t, path+".snap")
	db3 := reopen(t, path)
	if got := stateDigest(t, db3); !digestsEqual(before, got) {
		t.Fatal("second fallback recovery differs")
	}
}

// A crash between snapshot rotation and install leaves no primary; the
// fallback (the previous, normalized snapshot) must carry recovery.
func TestRecoveryFallbackOnMissingPrimary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("F", "f"), temporal.Date(1995, 1, 1), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	before := stateDigest(t, db)
	db.Close()
	// Simulate the mid-rotation crash: the primary has been renamed to the
	// fallback slot and the new primary was never written.
	if err := os.Rename(path+".snap", path+".snap.prev"); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatal("missing-primary recovery differs")
	}
	if ri := db2.Stats().Recovery; !ri.UsedFallback {
		t.Fatalf("recovery info = %+v, want fallback", ri)
	}
}

// With both snapshots corrupt, or with the snapshots deleted out from under
// a truncated log, recovery must fail with ErrCorrupt — never silently load
// a partial state.
func TestRecoveryRefusesUnprovableState(t *testing.T) {
	build := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "tdb.wal")
		db := reopen(t, path)
		buildMixedDB(t, db)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
			h, _ := tx.Rel("r_historical")
			return h.Assert(fac("F", "f"), temporal.Date(1995, 1, 1), temporal.Forever)
		}); err != nil {
			t.Fatal(err)
		}
		db.Close()
		return path
	}

	t.Run("both snapshots corrupt", func(t *testing.T) {
		path := build(t)
		corruptFile(t, path+".snap")
		corruptFile(t, path+".snap.prev")
		if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open: %v", err)
		}
	})
	t.Run("snapshots deleted", func(t *testing.T) {
		path := build(t)
		os.Remove(path + ".snap")
		os.Remove(path + ".snap.prev")
		if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open: %v", err)
		}
	})
}

// A torn log tail is repaired and reported through RecoveryInfo and Stats.
func TestRecoveryInfoReportsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	db.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, path)
	ri := db2.Stats().Recovery
	if !ri.TornTail {
		t.Fatalf("recovery info = %+v, want torn tail", ri)
	}
	if ri.Replayed != ri.LogRecords || ri.Replayed == 0 {
		t.Fatalf("recovery info = %+v, want full replay", ri)
	}
}

// Open through a FaultFS: an fsync failure during Checkpoint surfaces, and
// the database recovers to the pre-checkpoint state on reopen.
func TestCheckpointSyncFailureSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	ffs := vfs.NewFaultFS(vfs.Default())
	db, err := Open(path, Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1)), FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	buildMixedDB(t, db)
	before := stateDigest(t, db)

	ffs.FailSyncAt(1)
	if err := db.Checkpoint(); !errors.Is(err, vfs.ErrInjectedSync) {
		t.Fatalf("checkpoint with failing fsync: %v", err)
	}
	db.Close()

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatal("state after failed checkpoint differs")
	}
}
