package tdb

import (
	"tdb/internal/catalog"
	"tdb/internal/txn"
	"tdb/internal/wal"
	"tdb/temporal"
)

// Tx is an open update transaction. Obtain relation handles with Rel; all
// mutations through them share the transaction's commit chronon and commit
// or abort together.
type Tx struct {
	db  *DB
	itx *txn.Tx
	ops []wal.Op
}

// At returns the transaction's commit chronon — the transaction time every
// mutation in this transaction will carry.
func (tx *Tx) At() temporal.Chronon { return tx.itx.At() }

// Rel returns a transactional handle to the named relation.
func (tx *Tx) Rel(name string) (*TxRel, error) {
	rel, err := tx.db.cat.Get(name)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &TxRel{tx: tx, rel: rel}, nil
}

func (tx *Tx) logOp(op wal.Op) {
	tx.ops = append(tx.ops, op)
}

// TxRel is a relation handle bound to a transaction. Its mutation methods
// mirror the taxonomy: Insert/Delete/Replace apply to static and rollback
// relations (no valid time to supply), Assert/Retract to historical and
// temporal interval relations, AssertAt/RetractAt to event relations.
type TxRel struct {
	tx  *Tx
	rel *catalog.Relation
}

// Name returns the relation name.
func (r *TxRel) Name() string { return r.rel.Name() }

// bump records a successful mutation in the relation's write-version
// counter, the query cache's invalidation signal. Called on WAL replay too
// (replay re-enters these methods), so recovered databases resume counting
// where the log left off. A later abort leaves the bump in place, which
// only over-invalidates — the cache must never under-invalidate.
func (r *TxRel) bump() { r.rel.Store().BumpWriteVersion() }

// Kind returns the relation kind.
func (r *TxRel) Kind() Kind { return r.rel.Kind() }

// Insert adds a tuple to the current state of a static or rollback
// relation.
func (r *TxRel) Insert(t Tuple) error {
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Static:
		st, _ := r.rel.Static()
		if err := st.Insert(t); err != nil {
			return err
		}
	case StaticRollback:
		st, _ := r.rel.Rollback()
		if err := st.Insert(t, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpInsert, Rel: r.Name(), Tuple: t})
	return nil
}

// Delete removes the keyed tuple from the current state of a static or
// rollback relation.
func (r *TxRel) Delete(key Tuple) error {
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Static:
		st, _ := r.rel.Static()
		if err := st.Delete(key); err != nil {
			return err
		}
	case StaticRollback:
		st, _ := r.rel.Rollback()
		if err := st.Delete(key, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpDelete, Rel: r.Name(), Key: key})
	return nil
}

// Replace substitutes the keyed tuple in the current state of a static or
// rollback relation.
func (r *TxRel) Replace(key, t Tuple) error {
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Static:
		st, _ := r.rel.Static()
		if err := st.Replace(key, t); err != nil {
			return err
		}
	case StaticRollback:
		st, _ := r.rel.Rollback()
		if err := st.Replace(key, t, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpReplace, Rel: r.Name(), Key: key, Tuple: t})
	return nil
}

// Assert records that tuple t held from chronon from up to (excluding) to,
// in a historical or temporal interval relation. Use temporal.Forever for
// an open-ended belief.
func (r *TxRel) Assert(t Tuple, from, to temporal.Chronon) error {
	valid, err := temporal.MakeInterval(from, to)
	if err != nil {
		return err
	}
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Historical:
		st, _ := r.rel.Historical()
		if err := st.Assert(t, valid); err != nil {
			return err
		}
	case Temporal:
		st, _ := r.rel.Temporal()
		if err := st.Assert(t, valid, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpAssert, Rel: r.Name(), Tuple: t, Valid: valid})
	return nil
}

// Retract records that no tuple with the given key held during the period.
func (r *TxRel) Retract(key Tuple, from, to temporal.Chronon) error {
	valid, err := temporal.MakeInterval(from, to)
	if err != nil {
		return err
	}
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Historical:
		st, _ := r.rel.Historical()
		if err := st.Retract(key, valid); err != nil {
			return err
		}
	case Temporal:
		st, _ := r.rel.Temporal()
		if err := st.Retract(key, valid, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpRetract, Rel: r.Name(), Key: key, Valid: valid})
	return nil
}

// AssertAt records that event tuple t occurred at the given instant, in a
// historical or temporal event relation.
func (r *TxRel) AssertAt(t Tuple, at temporal.Chronon) error {
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Historical:
		st, _ := r.rel.Historical()
		if err := st.AssertAt(t, at); err != nil {
			return err
		}
	case Temporal:
		st, _ := r.rel.Temporal()
		if err := st.AssertAt(t, at, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpAssertAt, Rel: r.Name(), Tuple: t, At: at})
	return nil
}

// RetractAt withdraws the keyed event at the given instant.
func (r *TxRel) RetractAt(key Tuple, at temporal.Chronon) error {
	r.tx.itx.Enlist(r.rel.Transactional())
	switch r.rel.Kind() {
	case Historical:
		st, _ := r.rel.Historical()
		// Historical event correction is assert-at of nothing: carve the
		// instant away.
		if err := st.Retract(key, temporal.At(at)); err != nil {
			return err
		}
	case Temporal:
		st, _ := r.rel.Temporal()
		if err := st.RetractAt(key, at, r.tx.At()); err != nil {
			return err
		}
	default:
		return ErrKindMismatch
	}
	r.bump()
	r.tx.logOp(wal.Op{Code: wal.OpRetractAt, Rel: r.Name(), Key: key, At: at})
	return nil
}
