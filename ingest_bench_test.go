package tdb_test

// BenchmarkIngestThroughput prices the PR's ingest paths against each
// other under durable (Sync) commits, reporting rows/s and fsyncs per
// iteration alongside ns/op:
//
//   - mode=PerTxn      — GroupCommitMaxBatch=1: one write+fsync per
//     transaction, the pre-group-commit baseline.
//   - mode=GroupCommit — default group commit: 16 concurrent committers
//     coalesce onto shared fsyncs.
//   - mode=BulkLoad    — Relation.Load: chunked multi-row records with
//     pipelined flushes and segment-direct sealing.
//
// The interesting ratios are GroupCommit/PerTxn rows/s (the fsync
// amortization at 16 committers) and the fsyncs/op column (how many
// physical syncs a fixed row count costs on each path).

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tdb"
	"tdb/internal/obs"
	"tdb/temporal"
)

const (
	ingestRows    = 512
	ingestWorkers = 16
)

var ingestBase = temporal.Date(1980, 1, 1)

func ingestTuple(i int) tdb.Tuple {
	return tdb.NewTuple(tdb.String(fmt.Sprintf("r%06d", i)), tdb.String("ingest"))
}

// openIngestDB opens a durable on-disk database with a fresh WAL and an
// empty temporal relation to ingest into.
func openIngestDB(b *testing.B, opts tdb.Options) (*tdb.DB, *tdb.Relation) {
	b.Helper()
	opts.Clock = temporal.NewLogicalClock(temporal.Date(1985, 1, 1))
	opts.Sync = true
	db, err := tdb.Open(filepath.Join(b.TempDir(), "tdb.wal"), opts)
	if err != nil {
		b.Fatal(err)
	}
	s := tdb.MustSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	keyed, err := s.WithKey("name")
	if err != nil {
		b.Fatal(err)
	}
	rel, err := db.CreateRelation("ingest", tdb.Temporal, keyed)
	if err != nil {
		b.Fatal(err)
	}
	return db, rel
}

// ingestConcurrent commits ingestRows rows as ingestWorkers concurrent
// single-row transactions.
func ingestConcurrent(b *testing.B, db *tdb.DB) {
	b.Helper()
	per := ingestRows / ingestWorkers
	var wg sync.WaitGroup
	for w := 0; w < ingestWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				row := w*per + i
				err := db.Update(func(tx *tdb.Tx) error {
					h, err := tx.Rel("ingest")
					if err != nil {
						return err
					}
					return h.Assert(ingestTuple(row), ingestBase+temporal.Chronon(row), temporal.Forever)
				})
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkIngestThroughput(b *testing.B) {
	fsyncs := obs.Default.Counter("tdb_wal_fsyncs_total", "")
	modes := []struct {
		name   string
		opts   tdb.Options
		ingest func(b *testing.B, db *tdb.DB, rel *tdb.Relation)
	}{
		{
			name: "mode=PerTxn",
			opts: tdb.Options{GroupCommitMaxBatch: 1},
			ingest: func(b *testing.B, db *tdb.DB, _ *tdb.Relation) {
				ingestConcurrent(b, db)
			},
		},
		{
			name: "mode=GroupCommit",
			ingest: func(b *testing.B, db *tdb.DB, _ *tdb.Relation) {
				ingestConcurrent(b, db)
			},
		},
		{
			name: "mode=BulkLoad",
			ingest: func(b *testing.B, _ *tdb.DB, rel *tdb.Relation) {
				rows := make([]tdb.LoadRow, ingestRows)
				for i := range rows {
					rows[i] = tdb.LoadRow{
						Data: ingestTuple(i),
						From: ingestBase + temporal.Chronon(i),
						To:   temporal.Forever,
					}
				}
				if n, err := rel.Load(rows); err != nil || n != ingestRows {
					b.Fatalf("Load: %d rows, %v", n, err)
				}
			},
		},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var ingestSyncs uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, rel := openIngestDB(b, m.opts)
				before := fsyncs.Value()
				b.StartTimer()
				m.ingest(b, db, rel)
				b.StopTimer()
				ingestSyncs += fsyncs.Value() - before
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(ingestRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			b.ReportMetric(float64(ingestSyncs)/float64(b.N), "fsyncs/op")
		})
	}
}
