package tdb

import (
	"fmt"

	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/segment"
	"tdb/temporal"
)

// Relation is a handle to a named relation. Mutation methods run each
// operation in its own transaction; group operations with DB.Update when
// several must commit atomically. Query methods are read-only and may run
// concurrently with each other.
//
// Concurrency: every query method takes DB.mu.RLock for the duration of the
// store read and returns freshly allocated []Version slices whose elements
// are never mutated afterwards — the store appends versions, it does not
// rewrite them. Callers (the TQuel executor in particular, see
// tquel/parallel.go) may therefore share a returned slice across goroutines
// without further locking, even while later transactions commit: a commit
// takes DB.mu.Lock, so it cannot overlap the read, and it cannot touch the
// already-materialized copies.
type Relation struct {
	db  *DB
	rel *catalog.Relation
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.rel.Name() }

// Kind returns the relation's taxonomy kind.
func (r *Relation) Kind() Kind { return r.rel.Kind() }

// Event reports whether this is an event relation.
func (r *Relation) Event() bool { return r.rel.Event() }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.rel.Schema() }

// WriteVersion returns the relation's monotonic mutation counter: it
// advances on every successful append/delete/replace/assert/retract
// (including WAL replay) and survives checkpoint + restore. The query cache
// keys current-state results by it; reads are atomic, so no lock is taken.
func (r *Relation) WriteVersion() uint64 { return r.rel.WriteVersion() }

// Gen returns the relation's process-unique creation generation. Together
// with WriteVersion it makes a cache key immune to drop-and-recreate under
// the same name.
func (r *Relation) Gen() uint64 { return r.rel.Gen() }

// Insert adds a tuple to a static or rollback relation (one-op
// transaction).
func (r *Relation) Insert(t Tuple) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.Insert(t)
	})
}

// Delete removes the keyed tuple from a static or rollback relation.
func (r *Relation) Delete(key Tuple) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.Delete(key)
	})
}

// Replace substitutes the keyed tuple in a static or rollback relation.
func (r *Relation) Replace(key, t Tuple) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.Replace(key, t)
	})
}

// Assert records that t held over [from, to) in a historical or temporal
// relation.
func (r *Relation) Assert(t Tuple, from, to temporal.Chronon) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.Assert(t, from, to)
	})
}

// Retract records that nothing with the given key held over [from, to).
func (r *Relation) Retract(key Tuple, from, to temporal.Chronon) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.Retract(key, from, to)
	})
}

// AssertAt records an event occurrence at the given instant.
func (r *Relation) AssertAt(t Tuple, at temporal.Chronon) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.AssertAt(t, at)
	})
}

// RetractAt withdraws the keyed event at the given instant.
func (r *Relation) RetractAt(key Tuple, at temporal.Chronon) error {
	return r.db.Update(func(tx *Tx) error {
		h, err := tx.Rel(r.Name())
		if err != nil {
			return err
		}
		return h.RetractAt(key, at)
	})
}

// Get returns the current tuple with the given key in a static or rollback
// relation.
func (r *Relation) Get(key Tuple) (Tuple, bool, error) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	switch r.Kind() {
	case Static:
		st, _ := r.rel.Static()
		t, ok := st.Get(key)
		return t, ok, nil
	case StaticRollback:
		st, _ := r.rel.Rollback()
		t, ok := st.Get(key)
		return t, ok, nil
	default:
		return nil, false, ErrKindMismatch
	}
}

// History returns the currently believed versions for the key, in valid
// order, for historical and temporal relations.
func (r *Relation) History(key Tuple) ([]Version, error) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	switch r.Kind() {
	case Historical:
		st, _ := r.rel.Historical()
		return st.History(key), nil
	case Temporal:
		st, _ := r.rel.Temporal()
		return st.History(key), nil
	default:
		return nil, ErrNoValidTime
	}
}

// AuditTrail returns every version ever stored for the key, superseded
// ones included, in storage (commit) order — the full accountability record
// a temporal relation keeps: who believed what about this entity, and when
// each belief was adopted and abandoned. Only rollback-capable kinds retain
// such a record.
func (r *Relation) AuditTrail(key Tuple) ([]Version, error) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	if !r.Kind().SupportsRollback() {
		return nil, ErrNoRollback
	}
	sch := r.rel.Schema()
	var out []Version
	keep := func(v Version) bool {
		if TupleEqual(v.Data.Key(sch), key) {
			out = append(out, v)
		}
		return true
	}
	type keyScanner interface {
		ScanKey(kh uint64, fn func(core.Version) bool)
	}
	if s, ok := r.rel.Store().(keyScanner); ok {
		// Segmented stores route the scan through their per-segment key
		// bloom filters; the key comparison above still guards against
		// hash collisions.
		s.ScanKey(key.Hash64(), keep)
	} else {
		r.rel.Store().Versions(keep)
	}
	return out, nil
}

// Versions returns every stored version of the relation, including (for
// rollback and temporal kinds) superseded ones — the raw contents shown in
// the paper's figures.
func (r *Relation) Versions() []Version {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	var out []Version
	r.rel.Store().Versions(func(v Version) bool {
		out = append(out, v)
		return true
	})
	return out
}

// VersionCount returns the total number of stored versions.
func (r *Relation) VersionCount() int {
	return len(r.Versions())
}

// VisibleVersions returns the versions a query sees: the current belief
// when hasAsOf is false, or the state as of transaction time asOf when true
// (an error for kinds without transaction time). Each version carries both
// its valid and transaction periods, with the universal interval standing
// in for axes the kind does not record. This is the primitive the TQuel
// executor binds range variables to. The returned slice is a private copy,
// safe to read from any number of goroutines (see the type comment).
func (r *Relation) VisibleVersions(asOf temporal.Chronon, hasAsOf bool) ([]Version, error) {
	return r.VisibleVersionsFiltered(asOf, hasAsOf, nil)
}

// VisibleVersionsFiltered is VisibleVersions with optional comparison
// pre-filters (built with EqFilter/CmpFilter) evaluated on the columnar
// segments — and, on the interval-indexed as-of path, per stabbed position —
// before any tuple is materialized. Filters are an acceleration only:
// callers keep the originating conjuncts and re-verify them on the returned
// versions, so a filter can never change an answer, only shrink the set of
// versions materialized. Stores without columnar segments apply the filters
// row-wise, which is equally sound.
func (r *Relation) VisibleVersionsFiltered(asOf temporal.Chronon, hasAsOf bool, filters []*segment.Filter) ([]Version, error) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	st := r.rel.Store()
	if hasAsOf && !st.Kind().SupportsRollback() {
		return nil, ErrNoRollback
	}
	var out []Version
	switch s := st.(type) {
	case *core.RollbackStore:
		probe := temporal.Forever - 1
		if hasAsOf {
			probe = asOf
		}
		// Zone-mapped segment scan in commit order — the same rows, in the
		// same order, a flat Versions walk with a Trans.Contains(probe)
		// filter would produce.
		out = s.AsOfVersionsFiltered(probe, filters)
	case *core.TemporalStore:
		if !hasAsOf {
			asOf = temporal.Forever - 1
		}
		out = s.AsOfFiltered(asOf, filters)
	default:
		// Static and historical: current belief, already the only state;
		// no columns exist, so filters run row-wise.
		st.Versions(func(v Version) bool {
			if matchesFilters(filters, v.Data) {
				out = append(out, v)
			}
			return true
		})
	}
	return out, nil
}

// matchesFilters applies pre-filters row-wise for stores without columns.
func matchesFilters(filters []*segment.Filter, t Tuple) bool {
	for _, f := range filters {
		if !f.Match(t) {
			return false
		}
	}
	return true
}

// VersionsWhen returns the visible versions (in the sense of
// VisibleVersions) whose valid period overlaps q, answered through the
// store's valid-time paths — the interval-tree-indexed When for historical
// relations, the transaction-filtered When for temporal ones. The second
// result reports whether the store supports the pushed path; when false the
// caller must fall back to filtering VisibleVersions itself. The TQuel
// planner routes single-variable "v overlap E" when-conjuncts through here.
// The returned slice is a private copy, safe to read from any number of
// goroutines (see the type comment); the interval-tree stab itself runs
// under DB.mu.RLock, and the tree is mutated only inside transactions,
// which hold DB.mu.Lock.
func (r *Relation) VersionsWhen(q temporal.Interval, asOf temporal.Chronon, hasAsOf bool) ([]Version, bool, error) {
	return r.VersionsWhenFiltered(q, asOf, hasAsOf, nil)
}

// VersionsWhenFiltered is VersionsWhen with optional equality pre-filters
// (built with EqFilter) evaluated on the columnar segments before any tuple
// is materialized. Filters are an acceleration only: callers keep the
// originating conjuncts and re-verify them on the returned versions, so a
// filter can never change an answer — only shrink the set of versions
// materialized. Stores without columnar segments (historical relations)
// apply the filters row-wise, which is equally sound.
func (r *Relation) VersionsWhenFiltered(q temporal.Interval, asOf temporal.Chronon, hasAsOf bool, filters []*segment.Filter) ([]Version, bool, error) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	st := r.rel.Store()
	if hasAsOf && !st.Kind().SupportsRollback() {
		return nil, false, ErrNoRollback
	}
	switch s := st.(type) {
	case *core.HistoricalStore:
		out := s.When(q)
		if len(filters) > 0 {
			kept := out[:0]
			for _, v := range out {
				ok := true
				for _, f := range filters {
					if !f.Match(v.Data) {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, v)
				}
			}
			out = kept
		}
		return out, true, nil
	case *core.TemporalStore:
		probe := temporal.Forever - 1
		if hasAsOf {
			probe = asOf
		}
		return s.WhenFiltered(q, probe, filters), true, nil
	default:
		return nil, false, nil
	}
}

// EqFilter builds a columnar equality pre-filter on the named attribute for
// use with VersionsWhenFiltered and VisibleVersionsFiltered. It returns
// ok=false when the attribute is unknown or the probe value's kind does not
// exactly match the attribute's declared kind — coercing comparisons stay
// with the caller's evaluator.
func (r *Relation) EqFilter(attr string, v Value) (*segment.Filter, bool) {
	return r.CmpFilter(attr, segment.OpEq, v)
}

// CmpFilter builds a columnar comparison pre-filter "attr OP v". Beyond
// EqFilter's exact-kind rule, ordered operators are limited to the kinds
// whose columns preserve order (int, instant, float) — see
// segment.NewCmpFilter.
func (r *Relation) CmpFilter(attr string, op segment.Op, v Value) (*segment.Filter, bool) {
	sch := r.rel.Schema()
	idx := sch.Index(attr)
	if idx < 0 {
		return nil, false
	}
	return segment.NewCmpFilter(sch, idx, op, v)
}

// VersionsDuring returns every version that belonged to some believed
// database state during the transaction-time window [from, through]
// (inclusive of both rollback instants) — TQuel's "as of E1 through E2".
// Only rollback-capable kinds support it.
func (r *Relation) VersionsDuring(from, through temporal.Chronon) ([]Version, error) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	window, err := temporal.MakeInterval(from, through.Next())
	if err != nil {
		return nil, fmt.Errorf("tdb: as-of window inverted: [%v, %v]", from, through)
	}
	switch s := r.rel.Store().(type) {
	case *core.RollbackStore:
		return s.During(window), nil
	case *core.TemporalStore:
		return s.During(window), nil
	default:
		return nil, ErrNoRollback
	}
}

// CountAt returns the number of tuples valid at instant t according to
// current belief — the primitive behind trend analysis ("how did the number
// of faculty change over the last 5 years?").
func (r *Relation) CountAt(t temporal.Chronon) (int, error) {
	res, err := r.Query().At(t).Run()
	if err != nil {
		return 0, err
	}
	return res.Len(), nil
}

// SeriesPoint is one bucket of a trend series.
type SeriesPoint struct {
	// Bucket is the calendar granule.
	Bucket temporal.Interval
	// Count is the number of tuples valid at the bucket's start according
	// to current belief.
	Count int
}

// Series answers the paper's trend-analysis question as a time series: the
// tuple count valid at the start of each calendar granule in [from, to).
// It requires a kind with valid time.
func (r *Relation) Series(from, to temporal.Chronon, g temporal.Granularity) ([]SeriesPoint, error) {
	if !r.Kind().SupportsHistorical() {
		return nil, ErrNoValidTime
	}
	iv, err := temporal.MakeInterval(from, to)
	if err != nil {
		return nil, err
	}
	buckets := iv.Buckets(g)
	out := make([]SeriesPoint, 0, len(buckets))
	for _, b := range buckets {
		n, err := r.CountAt(b.From)
		if err != nil {
			return nil, err
		}
		out = append(out, SeriesPoint{Bucket: b, Count: n})
	}
	return out, nil
}
