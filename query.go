package tdb

import (
	"fmt"

	"tdb/internal/algebra"
	"tdb/internal/pretty"
	"tdb/temporal"
)

// Query is a fluent read query over one relation. The temporal clauses
// mirror TQuel's:
//
//   - AsOf(t): rollback — view the relation as stored at transaction time t
//     (rollback and temporal kinds only)
//   - When(iv): keep versions whose valid period overlaps iv
//   - At(t): keep versions valid at instant t (a one-chronon When)
//   - Where(pred): ordinary attribute predicate
//   - Coalesce(): merge value-equivalent versions over adjacent periods
//
// Run materializes the result; results are themselves relations and can be
// joined with Join.
type Query struct {
	rel      *Relation
	asOf     temporal.Chronon
	hasAsOf  bool
	when     temporal.Interval
	hasWhen  bool
	at       temporal.Chronon
	hasAt    bool
	where    []func(Tuple) (bool, error)
	eq       map[string]Value // attribute -> value, from WhereEq
	coalesce bool
}

// Query starts a query over the relation.
func (r *Relation) Query() *Query { return &Query{rel: r} }

// AsOf sets the rollback instant (transaction time).
func (q *Query) AsOf(t temporal.Chronon) *Query {
	q.asOf, q.hasAsOf = t, true
	return q
}

// When keeps versions whose valid period overlaps iv.
func (q *Query) When(iv temporal.Interval) *Query {
	q.when, q.hasWhen = iv, true
	return q
}

// At keeps versions valid at instant t.
func (q *Query) At(t temporal.Chronon) *Query {
	q.at, q.hasAt = t, true
	return q
}

// Where adds an attribute predicate; multiple predicates conjoin.
func (q *Query) Where(pred func(Tuple) (bool, error)) *Query {
	q.where = append(q.where, pred)
	return q
}

// WhereEq adds an equality predicate on the named attribute. When the
// equality predicates cover the relation's key, Run answers through the
// key index instead of scanning (see BenchmarkKeyLookupVsScan).
func (q *Query) WhereEq(attr string, v Value) *Query {
	if q.eq == nil {
		q.eq = make(map[string]Value)
	}
	q.eq[attr] = v
	idx := q.rel.Schema().Index(attr)
	return q.Where(func(t Tuple) (bool, error) {
		if idx < 0 {
			return false, fmt.Errorf("tdb: no attribute %q in %s", attr, q.rel.Name())
		}
		c, err := compareValues(t[idx], v)
		return err == nil && c == 0, err
	})
}

// keyLookup attempts the key-index fast path: when the WhereEq predicates
// cover every key attribute and no rollback instant is requested, the
// matching versions come straight from the key index. Returns nil, false
// when the fast path does not apply (Run then falls back to a scan).
func (q *Query) keyLookup() (*algebra.Relation, bool) {
	sch := q.rel.Schema()
	if q.hasAsOf || !sch.HasExplicitKey() || len(q.eq) == 0 {
		return nil, false
	}
	keyIdx := sch.KeyIndices()
	keyVals := make([]Value, 0, len(keyIdx))
	for _, ki := range keyIdx {
		v, ok := q.eq[sch.Attr(ki).Name]
		if !ok {
			return nil, false
		}
		keyVals = append(keyVals, v)
	}
	key := NewTuple(keyVals...)
	rel := &algebra.Relation{Schema: sch, Event: q.rel.Event()}
	switch q.rel.Kind() {
	case Static:
		st, _ := q.rel.rel.Static()
		if t, ok := st.Get(key); ok {
			rel.Rows = append(rel.Rows, algebra.Row{Data: t, Valid: temporal.All})
		}
	case StaticRollback:
		st, _ := q.rel.rel.Rollback()
		if t, ok := st.Get(key); ok {
			rel.Rows = append(rel.Rows, algebra.Row{Data: t, Valid: temporal.All})
		}
	case Historical:
		st, _ := q.rel.rel.Historical()
		for _, v := range st.History(key) {
			rel.Rows = append(rel.Rows, algebra.Row{Data: v.Data, Valid: v.Valid})
		}
	case Temporal:
		st, _ := q.rel.rel.Temporal()
		for _, v := range st.History(key) {
			rel.Rows = append(rel.Rows, algebra.Row{Data: v.Data, Valid: v.Valid})
		}
	default:
		return nil, false
	}
	return rel, true
}

// Coalesce merges value-equivalent versions over overlapping or adjacent
// valid periods in the result.
func (q *Query) Coalesce() *Query {
	q.coalesce = true
	return q
}

// Run executes the query and materializes the result.
func (q *Query) Run() (*Result, error) {
	db := q.rel.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	st := q.rel.rel.Store()
	if q.hasAsOf && !st.Kind().SupportsRollback() {
		return nil, fmt.Errorf("%w: %s is %s", ErrNoRollback, q.rel.Name(), st.Kind())
	}
	if (q.hasWhen || q.hasAt) && !st.Kind().SupportsHistorical() {
		return nil, fmt.Errorf("%w: %s is %s", ErrNoValidTime, q.rel.Name(), st.Kind())
	}
	rel, fast := q.keyLookup()
	if !fast {
		var err error
		rel, err = algebra.Scan(st, q.asOf, q.hasAsOf)
		if err != nil {
			return nil, err
		}
	}
	var err error
	if q.hasWhen {
		rel = algebra.When(rel, q.when)
	}
	if q.hasAt {
		rel = algebra.TimeSlice(rel, q.at)
	}
	for _, pred := range q.where {
		rel, err = algebra.Select(rel, func(row algebra.Row) (bool, error) {
			return pred(row.Data)
		})
		if err != nil {
			return nil, err
		}
	}
	if q.coalesce {
		rel = algebra.Coalesce(rel)
	}
	algebra.SortRows(rel)
	return &Result{rel: rel}, nil
}

// Result is a materialized derived relation. It is itself a relation: it
// can be inspected row by row, rendered as a table, or joined with another
// result.
type Result struct {
	rel *algebra.Relation
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.rel.Rows) }

// Schema returns the result schema.
func (r *Result) Schema() *Schema { return r.rel.Schema }

// Row returns the i-th row's data and valid period.
func (r *Result) Row(i int) (Tuple, temporal.Interval) {
	row := r.rel.Rows[i]
	return row.Data, row.Valid
}

// Tuples returns the data of every row.
func (r *Result) Tuples() []Tuple {
	out := make([]Tuple, len(r.rel.Rows))
	for i, row := range r.rel.Rows {
		out[i] = row.Data
	}
	return out
}

// Project returns the result restricted to the named attributes.
func (r *Result) Project(attrs ...string) (*Result, error) {
	indices := make([]int, 0, len(attrs))
	for _, a := range attrs {
		i := r.rel.Schema.Index(a)
		if i < 0 {
			return nil, fmt.Errorf("tdb: no attribute %q in result", a)
		}
		indices = append(indices, i)
	}
	rel, err := algebra.Project(r.rel, indices)
	if err != nil {
		return nil, err
	}
	algebra.SortRows(rel)
	return &Result{rel: rel}, nil
}

// Where filters the result rows by an attribute predicate.
func (r *Result) Where(pred func(Tuple) (bool, error)) (*Result, error) {
	rel, err := algebra.Select(r.rel, func(row algebra.Row) (bool, error) {
		return pred(row.Data)
	})
	if err != nil {
		return nil, err
	}
	return &Result{rel: rel}, nil
}

// Coalesce returns the result with value-equivalent rows merged over
// overlapping or adjacent valid periods.
func (r *Result) Coalesce() *Result {
	rel := algebra.Coalesce(r.rel)
	algebra.SortRows(rel)
	return &Result{rel: rel}
}

// String renders the result in the paper's table style, with the implicit
// valid-time columns after a double bar (omitted for relations without
// valid time).
func (r *Result) String() string {
	hasValid := false
	for _, row := range r.rel.Rows {
		if row.Valid != temporal.All {
			hasValid = true
			break
		}
	}
	sch := r.rel.Schema
	headers := make([]string, 0, sch.Arity()+2)
	for i := 0; i < sch.Arity(); i++ {
		headers = append(headers, sch.Attr(i).Name)
	}
	split := 0
	if hasValid {
		split = len(headers)
		if r.rel.Event {
			headers = append(headers, "valid at")
		} else {
			headers = append(headers, "valid from", "valid to")
		}
	}
	tbl := pretty.Table{Headers: headers, Split: split}
	for _, row := range r.rel.Rows {
		cells := make([]string, 0, len(headers))
		for _, v := range row.Data {
			cells = append(cells, v.String())
		}
		if hasValid {
			if r.rel.Event {
				cells = append(cells, row.Valid.From.String())
			} else {
				cells = append(cells, row.Valid.From.String(), row.Valid.To.String())
			}
		}
		tbl.Rows = append(tbl.Rows, cells)
	}
	return tbl.String()
}

// Join combines two results: tuples concatenate (colliding attribute names
// are qualified with the given prefixes), derived valid periods are the
// intersections of the operands', and rows whose combined data fail the
// optional on predicate are dropped.
func Join(a, b *Result, aPrefix, bPrefix string, on func(Tuple) (bool, error)) (*Result, error) {
	rel, err := algebra.Product(a.rel, b.rel, aPrefix, bPrefix)
	if err != nil {
		return nil, err
	}
	if on != nil {
		rel, err = algebra.Select(rel, func(row algebra.Row) (bool, error) {
			return on(row.Data)
		})
		if err != nil {
			return nil, err
		}
	}
	algebra.SortRows(rel)
	return &Result{rel: rel}, nil
}

func compareValues(a, b Value) (int, error) {
	return valueCompare(a, b)
}
