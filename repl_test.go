package tdb

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/repl"
	"tdb/internal/vfs"
	"tdb/internal/wal"
	"tdb/temporal"
)

// openFollower opens a read-only follower over path, failing the test on
// error.
func openFollower(t *testing.T, path string, fs vfs.FS) *DB {
	t.Helper()
	db, err := Open(path, Options{
		Clock:    temporal.NewLogicalClock(temporal.Date(1985, 1, 1)),
		ReadOnly: true,
		FS:       fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// shipWindow splits one raw log byte window (starting at the follower's
// durable cursor) into the prefix of complete frames plus their decoded
// records, mirroring what the follower loop applies.
func shipWindow(t *testing.T, epoch uint64, durable int64, raw []byte) (total int, recs []wal.Record) {
	t.Helper()
	body := raw
	header := 0
	if durable == 0 {
		ep, ok := wal.DecodeHeader(raw)
		if !ok {
			t.Fatal("shipped header failed verification")
		}
		if ep != epoch {
			t.Fatalf("shipped header epoch %d, want %d", ep, epoch)
		}
		header = wal.HeaderLen
		body = raw[header:]
	}
	consumed, err := wal.ScanFrames(body, func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return header + consumed, recs
}

// shipAll streams src's durable state onto dst through the replication
// hooks until the cursors meet, exactly as the network follower loop does.
func shipAll(t *testing.T, src, dst *DB) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("shipAll did not converge")
		}
		sEpoch, sSize, _ := src.ReplPosition()
		dEpoch, dSize := dst.ReplCursor()
		if dEpoch != sEpoch || dSize > sSize {
			snap, se, err := src.ReplSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.ReplReset(se, snap); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if dSize == sSize {
			return
		}
		raw, err := src.ReplReadLog(sEpoch, dSize, int(sSize-dSize))
		if err != nil {
			t.Fatal(err)
		}
		total, recs := shipWindow(t, sEpoch, dSize, raw)
		if total == 0 {
			t.Fatal("no complete frame in shipped window")
		}
		if err := dst.ReplApply(sEpoch, raw[:total], recs); err != nil {
			t.Fatal(err)
		}
	}
}

// assertReplicaIdentical checks the replication invariant end to end: same
// observable state, and a byte-identical log file (the shared cursor).
func assertReplicaIdentical(t *testing.T, primary, follower *DB, pPath, fPath string) {
	t.Helper()
	if got, want := stateDigest(t, follower), stateDigest(t, primary); !digestsEqual(got, want) {
		t.Fatalf("follower state diverges:\nwant %v\ngot  %v", want, got)
	}
	pBytes, err := os.ReadFile(pPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	fBytes, err := os.ReadFile(fPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	if string(pBytes) != string(fBytes) {
		t.Fatalf("follower log is not a byte-identical copy: primary %d bytes, follower %d bytes",
			len(pBytes), len(fBytes))
	}
	pc, po := primary.ReplCursor()
	fc, fo := follower.ReplCursor()
	if pc != fc || po != fo {
		t.Fatalf("cursors diverge: primary (%d,%d), follower (%d,%d)", pc, po, fc, fo)
	}
}

func TestReadOnlyRefusesMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := openFollower(t, path, nil)
	defer db.Close()

	if !db.Stats().ReadOnly || !db.IsReadOnly() {
		t.Fatal("follower does not report read-only")
	}
	if _, err := db.CreateRelation("r", Static, facultySchema(t)); !errors.Is(err, ErrReadOnly) {
		t.Errorf("create: %v, want ErrReadOnly", err)
	}
	if err := db.DropRelation("r"); !errors.Is(err, ErrReadOnly) {
		t.Errorf("drop: %v, want ErrReadOnly", err)
	}
	if err := db.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrReadOnly) {
		t.Errorf("update: %v, want ErrReadOnly", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("checkpoint: %v, want ErrReadOnly", err)
	}
}

// A fresh follower catches the primary's whole era-0 log and lands a
// byte-identical copy.
func TestReplShipWholeLog(t *testing.T) {
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary := reopen(t, pPath)
	defer primary.Close()
	buildMixedDB(t, primary)

	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower := openFollower(t, fPath, nil)
	defer follower.Close()

	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)
	if got, want := follower.LastCommit(), primary.LastCommit(); got != want {
		t.Errorf("applied commit clock %v, want %v", got, want)
	}
}

// A follower joining after the primary has checkpointed re-syncs through
// the snapshot, and a checkpoint happening mid-stream re-syncs a connected
// follower onto the new era.
func TestReplCheckpointResync(t *testing.T) {
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary := reopen(t, pPath)
	defer primary.Close()
	buildMixedDB(t, primary)
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes so the era-1 log is non-empty.
	at := temporal.Date(1990, 1, 1)
	if err := primary.UpdateAt(at, func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("Y", "after-ckpt"), at, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}

	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower := openFollower(t, fPath, nil)
	defer follower.Close()
	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)
	if e, _ := follower.ReplCursor(); e != 1 {
		t.Fatalf("follower era %d, want 1", e)
	}

	// Mid-stream rollover: checkpoint again, write, ship — the stale cursor
	// must re-sync, not error.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	at = temporal.Date(1991, 1, 1)
	if err := primary.UpdateAt(at, func(tx *Tx) error {
		h, _ := tx.Rel("r_temporal")
		return h.Assert(fac("Z", "era2"), at, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.ReplReadLog(1, 0, 1024); !errors.Is(err, repl.ErrEpochGone) {
		t.Fatalf("read of a rolled-over era: %v, want ErrEpochGone", err)
	}
	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)
	if e, _ := follower.ReplCursor(); e != 2 {
		t.Fatalf("follower era %d, want 2", e)
	}
}

// A restarted follower resumes from its durable cursor through ordinary
// recovery: no re-snapshot, no double apply.
func TestReplFollowerRestartResumes(t *testing.T) {
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary := reopen(t, pPath)
	defer primary.Close()
	buildMixedDB(t, primary)

	fDir := t.TempDir()
	fPath := filepath.Join(fDir, "tdb.wal")
	follower := openFollower(t, fPath, nil)

	// Ship only a prefix: the header plus the first two frames.
	sEpoch, sSize, _ := primary.ReplPosition()
	raw, err := primary.ReplReadLog(sEpoch, 0, int(sSize))
	if err != nil {
		t.Fatal(err)
	}
	total := wal.HeaderLen
	for i := 0; i < 2 && int64(total) < sSize; i++ {
		total += singleFrameSpan(t, raw[total:])
	}
	var recs []wal.Record
	if _, err := wal.ScanFrames(raw[wal.HeaderLen:total], func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := follower.ReplApply(sEpoch, raw[:total], recs); err != nil {
		t.Fatal(err)
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery replays the prefix, the cursor is the file size.
	follower = openFollower(t, fPath, nil)
	defer follower.Close()
	if _, off := follower.ReplCursor(); off != int64(total) {
		t.Fatalf("cursor after restart %d, want %d", off, total)
	}
	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)
}

// TestReplFollowerCrashMatrix kills the follower at every mutating
// filesystem operation during catch-up — covering every frame boundary,
// since each shipped window lands with one write — then reopens the torn
// directory and resumes from the recovered cursor. Every crash point must
// converge to a byte-identical replica. The matrix self-sizes like the
// checkpoint matrix: it walks crash points until a run completes clean.
func TestReplFollowerCrashMatrix(t *testing.T) {
	stride := crashSample(t)
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary := reopen(t, pPath)
	defer primary.Close()
	buildMixedDB(t, primary)
	sEpoch, sSize, _ := primary.ReplPosition()
	raw, err := primary.ReplReadLog(sEpoch, 0, int(sSize))
	if err != nil {
		t.Fatal(err)
	}

	// Pre-split the stream into per-frame windows (header rides with the
	// first), so every apply lands one frame and the crash matrix covers
	// every frame boundary plus every torn middle.
	type window struct {
		raw  []byte
		recs []wal.Record
	}
	var windows []window
	pos := int64(wal.HeaderLen)
	for pos < sSize {
		span := int64(singleFrameSpan(t, raw[pos:]))
		var recs []wal.Record
		if _, err := wal.ScanFrames(raw[pos:pos+span], func(r wal.Record) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		w := window{raw: raw[pos : pos+span], recs: recs}
		if pos == int64(wal.HeaderLen) {
			w.raw = raw[0 : pos+span] // first window carries the header
		}
		windows = append(windows, w)
		pos += span
	}

	const maxPoints = 2000
	completed := false
	for k := int64(1); k <= maxPoints; k += int64(stride) {
		fDir := t.TempDir()
		fPath := filepath.Join(fDir, "tdb.wal")
		ffs := vfs.NewFaultFS(vfs.OS{})
		follower := openFollower(t, fPath, ffs)
		ffs.CrashAfter(k)
		crashedAt := -1
		for i, w := range windows {
			if err := follower.ReplApply(sEpoch, w.raw, w.recs); err != nil {
				if !errors.Is(err, vfs.ErrCrashed) && !errors.Is(err, wal.ErrTorn) {
					t.Fatalf("k=%d window %d: unexpected apply error: %v", k, i, err)
				}
				crashedAt = i
				break
			}
		}
		follower.Close() // descriptors die with the simulated process
		if crashedAt < 0 && !ffs.Crashed() {
			completed = true
		}

		// Reboot: clean filesystem, ordinary recovery, resume from the
		// recovered cursor.
		follower = openFollower(t, fPath, nil)
		shipAll(t, primary, follower)
		assertReplicaIdentical(t, primary, follower, pPath, fPath)
		follower.Close()
		if completed {
			t.Logf("follower crash matrix: %d crash points exercised (stride %d)", k-1, stride)
			return
		}
	}
	t.Fatalf("follower apply still crashing after %d fault points", maxPoints)
}

// singleFrameSpan returns the byte length of the first frame (length field
// plus CRC plus payload) from the frame header alone.
func singleFrameSpan(t *testing.T, buf []byte) int {
	t.Helper()
	if len(buf) < wal.FrameOverhead {
		t.Fatal("short frame")
	}
	ln := int(binary.BigEndian.Uint32(buf[0:4]))
	if len(buf) < wal.FrameOverhead+ln {
		t.Fatal("incomplete frame")
	}
	return wal.FrameOverhead + ln
}

// TestReplApplyRejectsWrongEra guards the cursor contract.
func TestReplApplyRejectsWrongEra(t *testing.T) {
	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower := openFollower(t, fPath, nil)
	defer follower.Close()
	if err := follower.ReplApply(7, []byte{1, 2, 3}, nil); err == nil {
		t.Fatal("apply for a foreign era succeeded")
	}
	if err := follower.ReplReset(3, nil); err == nil {
		t.Fatal("era-3 reset without a snapshot succeeded")
	}
}

// TestReplChangedWakes proves the notification channel fires on append.
func TestReplChangedWakes(t *testing.T) {
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary := reopen(t, pPath)
	defer primary.Close()
	if _, err := primary.CreateRelation("r", Historical, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	ch := primary.ReplChanged()
	at := temporal.Date(1990, 1, 1)
	if err := primary.UpdateAt(at, func(tx *Tx) error {
		h, _ := tx.Rel("r")
		return h.Assert(fac("A", "x"), at, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("append did not close the change channel")
	}
}
