package server

import (
	"bufio"
	"bytes"
	"log"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tdb"
	"tdb/temporal"
)

// startLoggedServer is startServer with a capturing logger and the given
// slow-query threshold.
func startLoggedServer(t *testing.T, slow time.Duration) (addr string, logged func() string) {
	t.Helper()
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var mu sync.Mutex
	var buf bytes.Buffer
	srv := New(db, log.New(lockedWriter{&mu, &buf}, "", 0))
	srv.SlowQueryThreshold = slow
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), func() string {
		mu.Lock()
		defer mu.Unlock()
		return buf.String()
	}
}

type lockedWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestMalformedRequestCountedAndLogged sends undecodable JSON and an
// oversized frame; both must be logged and counted instead of silently
// dropped.
func TestMalformedRequestCountedAndLogged(t *testing.T) {
	addr, logged := startLoggedServer(t, 0)
	before := mMalformedTotal.Value()

	// Undecodable JSON: the connection survives and reports the error.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "malformed request") {
		t.Errorf("response = %q", line)
	}

	// Oversized frame: the server disconnects.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	huge := make([]byte, maxLine+2)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := conn2.Write(huge); err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(conn2).ReadString('\n'); err == nil {
		t.Error("server kept the connection after an oversized frame")
	}

	deadline := time.Now().Add(5 * time.Second)
	for mMalformedTotal.Value() < before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := mMalformedTotal.Value() - before; got < 2 {
		t.Errorf("malformed counter delta = %d, want >= 2", got)
	}
	logs := logged()
	if !strings.Contains(logs, "malformed request") || !strings.Contains(logs, "malformed protocol") {
		t.Errorf("log output missing malformed entries:\n%s", logs)
	}
}

// TestSlowQueryLogged uses a 1ns threshold so every command counts as slow.
func TestSlowQueryLogged(t *testing.T) {
	addr, logged := startLoggedServer(t, time.Nanosecond)
	before := mSlowTotal.Value()
	beforeCmds := mCommandsTotal.Value()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create static relation s (k = string) key (k)`); err != nil {
		t.Fatal(err)
	}

	if got := mSlowTotal.Value() - before; got != 1 {
		t.Errorf("slow counter delta = %d, want 1", got)
	}
	if got := mCommandsTotal.Value() - beforeCmds; got != 1 {
		t.Errorf("commands counter delta = %d, want 1", got)
	}
	if !strings.Contains(logged(), "slow query") {
		t.Errorf("log output missing slow query entry:\n%s", logged())
	}
}

// TestConnectionGaugeDrains asserts the open-connections gauge returns to
// its prior level once clients disconnect and the server drains.
func TestConnectionGaugeDrains(t *testing.T) {
	addr, _ := startLoggedServer(t, 0)
	before := mConnsOpen.Value()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(`create static relation g (k = string) key (k)`); err != nil {
		t.Fatal(err)
	}
	if got := mConnsOpen.Value(); got != before+1 {
		t.Errorf("gauge while connected = %d, want %d", got, before+1)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for mConnsOpen.Value() != before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := mConnsOpen.Value(); got != before {
		t.Errorf("gauge after close = %d, want %d", got, before)
	}
}
