package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PoolOptions configure replica-aware routing.
type PoolOptions struct {
	// MaxLag bounds replica staleness in chronons: a replica's answer is
	// accepted when the commit stamp it carries is within MaxLag of the
	// highest commit the pool has observed from any member; otherwise the
	// read is re-run on the primary. 0 demands exact freshness — the
	// replica must have applied everything the pool has seen committed.
	// Negative disables the bound (any replica answer is accepted).
	MaxLag int64
	// DialTimeout bounds connection establishment per member. Zero means
	// 10s.
	DialTimeout time.Duration
}

// PoolStats counts routing decisions, for monitoring and tests.
type PoolStats struct {
	// Reads is the number of read statements routed (anywhere).
	Reads uint64
	// ReplicaReads counts reads answered by a replica within the staleness
	// bound.
	ReplicaReads uint64
	// StaleFallbacks counts reads a replica answered too far behind, re-run
	// on the primary.
	StaleFallbacks uint64
	// ErrorFallbacks counts reads re-routed to the primary after a replica
	// transport failure or read-only rejection.
	ErrorFallbacks uint64
	// Writes counts statements routed to the primary because they mutate.
	Writes uint64
}

// Pool fans reads out across a primary and its read-only followers while
// sending every write to the primary. Because replication ships the
// transaction-time log, a follower is never wrong, only behind: its answer
// is exact for the state as of the commit stamp it returns. The pool turns
// that into a freshness contract — replica answers older than MaxLag
// chronons behind the newest commit the pool has witnessed are discarded
// and the read re-runs on the primary.
//
// Range-variable declarations are session state on each server connection,
// so the pool broadcasts them to every member; reads then work anywhere.
// Pool is safe for concurrent use.
type Pool struct {
	opts     PoolOptions
	primary  *poolConn
	replicas []*poolConn

	rr        atomic.Uint64 // round-robin cursor over replicas
	highWater atomic.Int64  // newest commit chronon seen from any member

	statsMu sync.Mutex
	stats   PoolStats
}

// poolConn serializes one Client: the wire protocol is strictly
// request/response per connection.
type poolConn struct {
	mu   sync.Mutex
	c    *Client
	addr string
}

func (pc *poolConn) do(ctx context.Context, req Request) (*Response, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.c.Do(ctx, req)
}

// NewPool dials the primary and every replica. An empty replica list is
// valid: the pool degenerates to a serialized client on the primary.
func NewPool(primary string, replicas []string, opts PoolOptions) (*Pool, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	p := &Pool{opts: opts}
	pc, err := DialTimeout(primary, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: pool primary: %w", err)
	}
	p.primary = &poolConn{c: pc, addr: primary}
	for _, addr := range replicas {
		rc, err := DialTimeout(addr, opts.DialTimeout)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("server: pool replica %s: %w", addr, err)
		}
		p.replicas = append(p.replicas, &poolConn{c: rc, addr: addr})
	}
	return p, nil
}

// Exec routes one TQuel statement batch: mutations to the primary, reads
// to a replica under the staleness bound (primary when no replica
// qualifies), range declarations to every member. Like Client.Exec,
// execution errors arrive in Response.Error, not as a Go error.
func (p *Pool) Exec(ctx context.Context, src string) (*Response, error) {
	req := Request{V: ProtoVersion, Src: src}
	switch classify(src) {
	case stmtDeclaration:
		return p.broadcast(ctx, req)
	case stmtRead:
		return p.read(ctx, req)
	default:
		p.bump(func(s *PoolStats) { s.Writes++ })
		return p.doObserved(ctx, p.primary, req)
	}
}

// ExecBatch routes a multi-statement batch (protocol 1.2) as one request:
// a batch containing any mutation goes to the primary, a batch declaring
// range variables is broadcast to every member, and a pure-read batch
// follows the replica path under the staleness bound. Classification is
// whole-batch — mixing one write into a batch of reads sends the entire
// batch to the primary, which is always correct, just less offloaded.
func (p *Pool) ExecBatch(ctx context.Context, stmts []string) (*Response, error) {
	req := Request{V: ProtoVersion, Cmd: "batch", Batch: stmts}
	switch classify(strings.Join(stmts, " ")) {
	case stmtDeclaration:
		return p.broadcast(ctx, req)
	case stmtRead:
		return p.read(ctx, req)
	default:
		p.bump(func(s *PoolStats) { s.Writes++ })
		return p.doObserved(ctx, p.primary, req)
	}
}

// Stats returns a snapshot of the pool's routing counters.
func (p *Pool) Stats() PoolStats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.stats
}

// Close releases every member connection.
func (p *Pool) Close() error {
	var first error
	if p.primary != nil {
		first = p.primary.c.Close()
	}
	for _, r := range p.replicas {
		if err := r.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// read answers one read statement, preferring a replica.
func (p *Pool) read(ctx context.Context, req Request) (*Response, error) {
	p.bump(func(s *PoolStats) { s.Reads++ })
	if len(p.replicas) == 0 {
		return p.doObserved(ctx, p.primary, req)
	}
	rc := p.replicas[p.rr.Add(1)%uint64(len(p.replicas))]
	resp, err := rc.do(ctx, req)
	if err != nil || resp.Code == CodeReadOnly {
		// Transport trouble or a statement the classifier thought was a
		// read but the follower refused: the primary settles both.
		mPoolErrorFallbacks.Inc()
		p.bump(func(s *PoolStats) { s.ErrorFallbacks++ })
		return p.doObserved(ctx, p.primary, req)
	}
	p.observe(resp)
	if p.tooStale(resp) {
		mPoolStaleFallbacks.Inc()
		p.bump(func(s *PoolStats) { s.StaleFallbacks++ })
		return p.doObserved(ctx, p.primary, req)
	}
	mPoolReplicaReads.Inc()
	p.bump(func(s *PoolStats) { s.ReplicaReads++ })
	return resp, nil
}

// broadcast runs a declaration on the primary and every replica, returning
// the primary's response. A replica that cannot take the declaration is
// dropped from fan-out implicitly: its future reads fail and fall back.
func (p *Pool) broadcast(ctx context.Context, req Request) (*Response, error) {
	resp, err := p.doObserved(ctx, p.primary, req)
	if err != nil {
		return nil, err
	}
	for _, rc := range p.replicas {
		if r2, err2 := rc.do(ctx, req); err2 == nil {
			p.observe(r2)
		}
	}
	return resp, nil
}

// doObserved runs a request on one member and feeds its commit stamp into
// the high-water mark.
func (p *Pool) doObserved(ctx context.Context, pc *poolConn, req Request) (*Response, error) {
	resp, err := pc.do(ctx, req)
	if err != nil {
		return nil, err
	}
	p.observe(resp)
	return resp, nil
}

// observe advances the high-water commit mark monotonically.
func (p *Pool) observe(resp *Response) {
	c := resp.Commit
	for {
		cur := p.highWater.Load()
		if c <= cur || p.highWater.CompareAndSwap(cur, c) {
			return
		}
	}
}

// tooStale reports whether a replica answer violates the staleness bound.
func (p *Pool) tooStale(resp *Response) bool {
	if p.opts.MaxLag < 0 {
		return false
	}
	return p.highWater.Load()-resp.Commit > p.opts.MaxLag
}

func (p *Pool) bump(fn func(*PoolStats)) {
	p.statsMu.Lock()
	fn(&p.stats)
	p.statsMu.Unlock()
}

// Statement classes for routing.
type stmtClass int

const (
	stmtWrite stmtClass = iota
	stmtRead
	stmtDeclaration
)

// classify buckets a statement batch lexically: anything containing a
// mutation keyword goes to the primary (a keyword inside a string literal
// misroutes conservatively — the primary answers reads too), a batch with
// a range declaration is broadcast, and pure retrieves are reads.
func classify(src string) stmtClass {
	decl := false
	for _, f := range strings.Fields(strings.ToLower(src)) {
		switch f {
		case "append", "delete", "replace", "create", "destroy":
			return stmtWrite
		case "range":
			decl = true
		}
	}
	if decl {
		return stmtDeclaration
	}
	return stmtRead
}
