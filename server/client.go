package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"tdb"
)

// Client is a connection to a tdbd server. It is not safe for concurrent
// use: the protocol is strictly request/response per connection (open one
// client per goroutine).
type Client struct {
	addr        string
	dialTimeout time.Duration
	conn        net.Conn
	r           *bufio.Scanner
	w           *bufio.Writer
}

// Dial connects to a tdbd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bound on connection establishment.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, dialTimeout: timeout}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the transport, dropping any previous connection.
func (c *Client) redial() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return fmt.Errorf("server: dial %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	c.conn, c.r, c.w = conn, sc, bufio.NewWriter(conn)
	return nil
}

// Exec sends TQuel source and returns the server's response. A non-nil
// error means the transport failed or the server refused the request
// (busy rejections surface as tdb.ErrBusy — use Do to retry them
// automatically); execution errors arrive in Response.Error with the
// connection still usable.
func (c *Client) Exec(src string) (*Response, error) {
	return c.send(Request{V: ProtoVersion, Src: src})
}

// Command sends an admin command ("cache", "cache clear") and returns the
// server's response; cache statistics arrive in Response.Cache.
func (c *Client) Command(cmd string) (*Response, error) {
	return c.send(Request{V: ProtoVersion, Cmd: cmd})
}

// Retry policy for Do: attempts are spaced by an exponentially growing
// backoff starting at doBaseBackoff, doubling up to doMaxAttempts total
// tries (worst case ~1.5s of waiting), each sleep cancellable through the
// context.
const (
	doMaxAttempts = 6
	doBaseBackoff = 50 * time.Millisecond
)

// Do executes one request, absorbing the server's backpressure: a busy
// rejection (tdb.ErrBusy) or a transport failure triggers a redial and a
// bounded exponential-backoff retry, honoring ctx between attempts. Use Do
// rather than Exec when the server may be at its connection cap; like Exec,
// execution errors arrive in Response.Error, not as a Go error.
func (c *Client) Do(ctx context.Context, req Request) (*Response, error) {
	if req.V == "" {
		req.V = ProtoVersion
	}
	backoff := doBaseBackoff
	var lastErr error
	for attempt := 0; attempt < doMaxAttempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, fmt.Errorf("server: do: %w (last attempt: %w)", ctx.Err(), lastErr)
			case <-timer.C:
			}
			backoff *= 2
			if err := c.redial(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("server: do: %w", err)
		}
		resp, err := c.send(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("server: do: giving up after %d attempts: %w", doMaxAttempts, lastErr)
}

func (c *Client) send(req Request) (*Response, error) {
	line, err := encodeLine(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.w.Write(line); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, fmt.Errorf("server: receive: %w", err)
		}
		return nil, fmt.Errorf("server: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("server: malformed response: %w", err)
	}
	if resp.Code == CodeBusy {
		// The server closes the connection after a busy rejection; surface
		// it as the typed sentinel so callers (and Do) can back off.
		return nil, fmt.Errorf("%w: %s", tdb.ErrBusy, resp.Error)
	}
	return &resp, nil
}

// Close releases the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
