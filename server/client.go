package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"tdb"
)

// Client is a connection to a tdbd server. It is not safe for concurrent
// use: the protocol is strictly request/response per connection (open one
// client per goroutine).
type Client struct {
	addr        string
	dialTimeout time.Duration
	conn        net.Conn
	r           *bufio.Scanner
	w           *bufio.Writer
}

// Dial connects to a tdbd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bound on connection establishment.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, dialTimeout: timeout}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the transport, dropping any previous connection.
func (c *Client) redial() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return fmt.Errorf("server: dial %s: %w", c.addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	c.conn, c.r, c.w = conn, sc, bufio.NewWriter(conn)
	return nil
}

// Exec sends TQuel source and returns the server's response. A non-nil
// error means the transport failed or the server refused the request
// (busy rejections surface as tdb.ErrBusy — use Do to retry them
// automatically); execution errors arrive in Response.Error with the
// connection still usable.
func (c *Client) Exec(src string) (*Response, error) {
	return c.send(Request{V: ProtoVersion, Src: src})
}

// Command sends an admin command ("cache", "cache clear") and returns the
// server's response; cache statistics arrive in Response.Cache.
func (c *Client) Command(cmd string) (*Response, error) {
	return c.send(Request{V: ProtoVersion, Cmd: cmd})
}

// ExecBatch sends a multi-statement batch (protocol 1.2) in one round
// trip. Per-statement results arrive in Response.Batch, one entry per
// attempted statement; on a mid-batch failure the failing statement's
// entry is last and Response.Error mirrors it. Statements are independent
// transactions — the ones before a failure stay committed.
func (c *Client) ExecBatch(stmts []string) (*Response, error) {
	return c.send(Request{V: ProtoVersion, Cmd: "batch", Batch: stmts})
}

// Pipeline writes every request before reading any response — one round
// trip's latency for N requests — and returns the responses in request
// order: resps[i] answers reqs[i]. The server executes strictly in order,
// so pipelined mutations still apply in slice order.
//
// On a transport failure the responses received so far are returned along
// with the error; resps[len(resps)] onward were never read, and whether
// their requests executed is unknown — Pipeline never retries (the
// delivered-request ambiguity of Do applies to every in-flight request at
// once). A busy rejection surfaces as tdb.ErrBusy on the first response;
// the server closes the connection after sending it.
func (c *Client) Pipeline(reqs []Request) ([]*Response, error) {
	for i := range reqs {
		if reqs[i].V == "" {
			reqs[i].V = ProtoVersion
		}
		line, err := encodeLine(reqs[i])
		if err != nil {
			return nil, err
		}
		if _, err := c.w.Write(line); err != nil {
			return nil, fmt.Errorf("server: pipeline send: %w", err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("server: pipeline send: %w", err)
	}
	resps := make([]*Response, 0, len(reqs))
	for range reqs {
		if !c.r.Scan() {
			if err := c.r.Err(); err != nil {
				return resps, fmt.Errorf("server: pipeline receive after %d responses: %w", len(resps), err)
			}
			return resps, fmt.Errorf("server: connection closed after %d responses", len(resps))
		}
		var wire Response
		if err := json.Unmarshal(c.r.Bytes(), &wire); err != nil {
			return resps, fmt.Errorf("server: malformed response: %w", err)
		}
		if wire.Code == CodeBusy {
			return resps, fmt.Errorf("%w: %s", tdb.ErrBusy, wire.Error)
		}
		resps = append(resps, &wire)
	}
	return resps, nil
}

// Retry policy for Do: attempts are spaced by an exponentially growing
// backoff starting at doBaseBackoff, doubling up to doMaxAttempts total
// tries (worst case ~1.5s of waiting), each sleep cancellable through the
// context.
const (
	doMaxAttempts = 6
	doBaseBackoff = 50 * time.Millisecond
)

// Do executes one request, absorbing the server's backpressure: a typed
// busy rejection (tdb.ErrBusy) or a transport failure that provably
// preceded delivery — a failed dial or redial, an incomplete send — triggers
// a redial and a bounded exponential-backoff retry, honoring ctx between
// attempts. A failure after the complete request reached the transport (a
// response lost on the wire) is returned as an error rather than retried:
// the server may already have executed the statement, and re-sending a
// non-idempotent request such as an append could apply it twice. Callers
// needing at-most-once mutations across such failures must deduplicate at
// the application level. Use Do rather than Exec when the server may be at
// its connection cap; like Exec, execution errors arrive in Response.Error,
// not as a Go error.
func (c *Client) Do(ctx context.Context, req Request) (*Response, error) {
	if req.V == "" {
		req.V = ProtoVersion
	}
	backoff := doBaseBackoff
	var lastErr error
	for attempt := 0; attempt < doMaxAttempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, fmt.Errorf("server: do: %w (last attempt: %w)", ctx.Err(), lastErr)
			case <-timer.C:
			}
			backoff *= 2
			if err := c.redial(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("server: do: %w", err)
		}
		resp, delivered, err := c.sendTracked(req)
		if err == nil {
			return resp, nil
		}
		if delivered && !errors.Is(err, tdb.ErrBusy) {
			// The whole request reached the wire but the exchange failed
			// afterwards; only the server's own busy rejection proves it was
			// not executed. Anything else must not be blindly re-sent.
			return nil, fmt.Errorf("server: do: request may have been executed, not retrying: %w", err)
		}
		lastErr = err
	}
	return nil, fmt.Errorf("server: do: giving up after %d attempts: %w", doMaxAttempts, lastErr)
}

func (c *Client) send(req Request) (*Response, error) {
	resp, _, err := c.sendTracked(req)
	return resp, err
}

// sendTracked performs one request/response exchange and reports, alongside
// any error, whether the complete request was handed to the transport. The
// protocol is newline-delimited and the newline is the request's last byte,
// so an error before the full line is written proves the server never saw a
// complete request; once delivered is true, a failure no longer proves the
// server did not execute it — the distinction Do's retry policy rests on.
func (c *Client) sendTracked(req Request) (resp *Response, delivered bool, err error) {
	line, err := encodeLine(req)
	if err != nil {
		return nil, false, err
	}
	if _, err := c.w.Write(line); err != nil {
		return nil, false, fmt.Errorf("server: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, false, fmt.Errorf("server: send: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, true, fmt.Errorf("server: receive: %w", err)
		}
		return nil, true, fmt.Errorf("server: connection closed")
	}
	var wire Response
	if err := json.Unmarshal(c.r.Bytes(), &wire); err != nil {
		return nil, true, fmt.Errorf("server: malformed response: %w", err)
	}
	if wire.Code == CodeBusy {
		// The server closes the connection after a busy rejection; surface
		// it as the typed sentinel so callers (and Do) can back off.
		return nil, true, fmt.Errorf("%w: %s", tdb.ErrBusy, wire.Error)
	}
	return &wire, true, nil
}

// Close releases the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
