package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client is a connection to a tdbd server. It is not safe for concurrent
// use: the protocol is strictly request/response per connection (open one
// client per goroutine).
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a tdbd server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bound on connection establishment.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	return &Client{conn: conn, r: sc, w: bufio.NewWriter(conn)}, nil
}

// Exec sends TQuel source and returns the server's response. A non-nil
// error means the transport failed; execution errors arrive in
// Response.Error with the connection still usable.
func (c *Client) Exec(src string) (*Response, error) {
	return c.send(Request{Src: src})
}

// Command sends an admin command ("cache", "cache clear") and returns the
// server's response; cache statistics arrive in Response.Cache.
func (c *Client) Command(cmd string) (*Response, error) {
	return c.send(Request{Cmd: cmd})
}

func (c *Client) send(req Request) (*Response, error) {
	line, err := encodeLine(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.w.Write(line); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return nil, fmt.Errorf("server: receive: %w", err)
		}
		return nil, fmt.Errorf("server: connection closed")
	}
	var resp Response
	if err := json.Unmarshal(c.r.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("server: malformed response: %w", err)
	}
	return &resp, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
