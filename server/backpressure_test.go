package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdb"
	"tdb/temporal"
)

// startServerWith is startServer with a configuration hook applied before
// Serve.
func startServerWith(t *testing.T, tune func(*Server)) (*Server, string) {
	t.Helper()
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := New(db, nil)
	if tune != nil {
		tune(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	return srv, l.Addr().String()
}

// Over-cap connections get a typed busy rejection; clients within the cap
// are served normally, and slots free up as connections close.
func TestMaxConnsBusyRejection(t *testing.T) {
	const cap = 4
	_, addr := startServerWith(t, func(s *Server) { s.MaxConns = cap })

	// Fill the cap with clients that hold their slots (verified live with a
	// round trip, so the server has registered all of them).
	var held []*Client
	for i := 0; i < cap; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(`create static relation ok` + fmt.Sprint(i) + ` (x = int)`); err != nil {
			t.Fatal(err)
		}
		held = append(held, c)
	}

	// Push to 2x the cap: every extra connection must be rejected with the
	// typed busy error — not hang, not get a silent close.
	var busy atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cap; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("dial over cap: %v", err)
				return
			}
			defer c.Close()
			_, err = c.Exec(`retrieve (v.x)`)
			if errors.Is(err, tdb.ErrBusy) {
				busy.Add(1)
				return
			}
			t.Errorf("over-cap exec: %v, want tdb.ErrBusy", err)
		}()
	}
	wg.Wait()
	if got := busy.Load(); got != cap {
		t.Fatalf("busy rejections = %d, want %d", got, cap)
	}

	// Held clients are still healthy.
	if _, err := held[0].Exec(`create static relation after (x = int)`); err != nil {
		t.Fatalf("held connection broken by rejections: %v", err)
	}
	// Releasing a slot admits a new client.
	held[cap-1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Exec(`create static relation readmitted (x = int)`)
		c.Close()
		if err == nil {
			break
		}
		if !errors.Is(err, tdb.ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("after releasing a slot: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, c := range held[:cap-1] {
		c.Close()
	}
}

// Do absorbs busy rejections: with the cap held, Do keeps backing off and
// redialing until a slot frees, then succeeds.
func TestClientDoRetriesBusy(t *testing.T) {
	_, addr := startServerWith(t, func(s *Server) { s.MaxConns = 1 })

	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Exec(`create static relation r (x = int)`); err != nil {
		t.Fatal(err)
	}

	// Free the slot while the second client is mid-backoff.
	go func() {
		time.Sleep(150 * time.Millisecond)
		holder.Close()
	}()

	c, err := Dial(addr) // rejected connection: Do must redial through it
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(context.Background(), Request{Src: `append to r (x = 1)`})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("Do response: %+v", resp)
	}

	// A canceled context stops the retry loop with the context error.
	// First hand the slot from c to a fresh holder (retrying until the
	// server has released c's slot).
	c.Close()
	var hold2 *Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		hold2, err = Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err = hold2.Exec(`retrieve (x.y)`); err == nil {
			break // slot occupied (the execution error is in resp.Error)
		}
		hold2.Close()
		if !errors.Is(err, tdb.ErrBusy) || time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer hold2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Do(ctx, Request{Src: `retrieve (v.x)`}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do with expired context: %v", err)
	}
}

// Requests from a different protocol major are refused with a structured
// error; the connection stays open and current-major requests still work.
func TestProtocolVersionNegotiation(t *testing.T) {
	_, addr := startServerWith(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	roundTrip := func(req string) Response {
		t.Helper()
		if _, err := fmt.Fprintln(conn, req); err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(conn)
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := roundTrip(`{"v": "9.0", "src": "retrieve (v.x)"}`)
	if resp.Code != CodeVersion || resp.Error == "" {
		t.Fatalf("future-major response = %+v", resp)
	}
	if resp.V != ProtoVersion {
		t.Fatalf("response version = %q, want %q", resp.V, ProtoVersion)
	}
	// Same connection, supported version: served.
	resp = roundTrip(`{"v": "` + ProtoVersion + `", "src": "create static relation ok (x = int)"}`)
	if resp.Code != "" || resp.Error != "" {
		t.Fatalf("current-major response = %+v", resp)
	}
	// No version at all (legacy client): served.
	resp = roundTrip(`{"src": "create static relation legacy (x = int)"}`)
	if resp.Code != "" || resp.Error != "" {
		t.Fatalf("legacy response = %+v", resp)
	}
	// A newer *minor* is fine.
	resp = roundTrip(`{"v": "1.9", "src": "create static relation minor (x = int)"}`)
	if resp.Code != "" || resp.Error != "" {
		t.Fatalf("newer-minor response = %+v", resp)
	}
}

// Shutdown drains: a request in flight when Close starts still gets its
// response; idle connections are released without waiting for the timeout.
func TestCloseDrainsInFlight(t *testing.T) {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := New(db, nil)
	srv.DrainTimeout = 10 * time.Second
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create static relation d (x = int)`); err != nil {
		t.Fatal(err)
	}

	// An idle extra connection must not hold the drain open.
	idle, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if _, err := idle.Exec(`retrieve (d.x)`); err != nil {
		t.Fatal(err) // make sure the server registered it
	}

	// Race a request against Close. Whichever way the race lands, the
	// outcome must be clean: a full response or a connection-level error —
	// never a hang, and Close itself must finish well under DrainTimeout.
	execDone := make(chan error, 1)
	go func() {
		_, err := c.Exec(`append to d (x = 1)`)
		execDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	closeStart := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(closeStart); elapsed > 5*time.Second {
		t.Fatalf("Close took %s: drain did not release idle connections", elapsed)
	}
	select {
	case <-execDone:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request neither answered nor failed")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

// The per-connection read timeout disconnects idle clients.
func TestReadTimeoutDisconnectsIdle(t *testing.T) {
	_, addr := startServerWith(t, func(s *Server) { s.ReadTimeout = 100 * time.Millisecond })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create static relation z (x = int)`); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, err := c.Exec(`retrieve (z.x)`); err == nil {
		t.Fatal("idle connection still alive after read timeout")
	}
}

// A request that was fully delivered but whose response was lost must not
// be retried: the server may have executed it, and re-sending would
// double-apply a mutation. Only busy rejections and pre-delivery failures
// redial.
func TestClientDoDoesNotRetryLostResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var conns atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func(conn net.Conn) {
				// Swallow the request, then drop the connection without
				// answering: the classic lost-response failure.
				conn.Read(make([]byte, 4096))
				conn.Close()
			}(conn)
		}
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Do(ctx, Request{Src: `append to r (x = 1)`}); err == nil {
		t.Fatal("Do succeeded with no response")
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("client opened %d connections, want 1 (no retry after delivery)", got)
	}
}
