package server

import "tdb/internal/obs"

var (
	mConnsOpen = obs.Default.Gauge("tdb_server_connections_open",
		"Connections currently being served.")
	mConnsTotal = obs.Default.Counter("tdb_server_connections_total",
		"Connections accepted since process start.")
	mCommandsTotal = obs.Default.Counter("tdb_server_commands_total",
		"Protocol commands (request lines) served.")
	mBatchStmtsTotal = obs.Default.Counter("tdb_server_batch_statements_total",
		"Statements executed inside batch commands (1.2+). Together with "+
			"tdb_server_commands_total this shows how much pipelined batching "+
			"amortizes request round-trips.")
	mCommandSeconds = obs.Default.Histogram("tdb_server_command_seconds",
		"End-to-end command latency: decode, execute, encode.", obs.TimeBuckets)
	mMalformedTotal = obs.Default.Counter("tdb_server_malformed_total",
		"Malformed protocol lines: undecodable JSON or oversized frames.")
	mSlowTotal = obs.Default.Counter("tdb_server_slow_queries_total",
		"Commands slower than the server's slow-query threshold.")
	mBusyTotal = obs.Default.Counter("tdb_server_busy_rejects_total",
		"Connections rejected with a busy response at the connection cap.")
	mTimeoutTotal = obs.Default.Counter("tdb_server_idle_timeouts_total",
		"Connections disconnected by the per-connection read timeout.")
)

// Pool (replica-aware client) routing metrics.
var (
	mPoolReplicaReads = obs.Default.Counter("tdb_pool_replica_reads_total",
		"Reads answered by a replica within the staleness bound.")
	mPoolStaleFallbacks = obs.Default.Counter("tdb_pool_stale_fallbacks_total",
		"Replica reads discarded for exceeding the staleness bound and re-run on the primary.")
	mPoolErrorFallbacks = obs.Default.Counter("tdb_pool_error_fallbacks_total",
		"Reads re-routed to the primary after a replica failure or read-only rejection.")
)
