package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"tdb"
	"tdb/internal/command"
	"tdb/internal/obs"
	"tdb/internal/repl"
	"tdb/tquel"
)

// Server serves TQuel over TCP. All connections share one database; the
// database's own locking serializes updates.
type Server struct {
	db     *tdb.DB
	logger *log.Logger

	// SlowQueryThreshold, when positive, logs (and counts) any command
	// whose end-to-end handling takes at least this long. Set it before
	// Serve; it is read concurrently afterwards.
	SlowQueryThreshold time.Duration

	// QueryTracer, when non-nil, is installed on every connection's TQuel
	// session so query phases (parse/analyze/execute) are traced. Set it
	// before Serve. Leave nil for the zero-overhead path.
	QueryTracer obs.Tracer

	// MaxConns, when positive, caps concurrently served connections.
	// Connections over the cap receive a structured "busy" response and are
	// closed — backpressure the client can see and retry on, instead of an
	// unbounded accept queue. Set before Serve.
	MaxConns int

	// ReadTimeout, when positive, bounds how long a connection may sit
	// without sending a complete request line before it is disconnected
	// (idle or stalled clients cannot pin a connection slot forever).
	// Set before Serve.
	ReadTimeout time.Duration

	// WriteTimeout, when positive, bounds writing one response to a client
	// that has stopped reading. Set before Serve.
	WriteTimeout time.Duration

	// DrainTimeout bounds how long Close waits for in-flight requests to
	// finish before force-closing their connections. Zero means
	// DefaultDrainTimeout. Set before Serve.
	DrainTimeout time.Duration

	// ReplHeartbeat is the idle position-report interval on replication
	// streams. Zero means repl.DefaultHeartbeat. Set before Serve.
	ReplHeartbeat time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	done     chan struct{} // closed by Close; ends replication streams
}

// DefaultDrainTimeout is how long Close lets in-flight requests finish when
// DrainTimeout is unset.
const DefaultDrainTimeout = 5 * time.Second

// New creates a server over an open database. A nil logger discards
// diagnostics.
func New(db *tdb.DB, logger *log.Logger) *Server {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Server{
		db:     db,
		logger: logger,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
}

// Serve accepts connections until the listener is closed (by Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close raced ahead of Serve; shut the listener and report a clean
		// stop, matching Close-after-Serve behavior.
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed || (s.MaxConns > 0 && len(s.conns) >= s.MaxConns) {
			s.mu.Unlock()
			mBusyTotal.Inc()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.rejectBusy(conn)
			}()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// rejectBusy tells an over-cap client why it is being turned away, then
// closes the connection. The response is written without waiting for a
// request: the client sees it on its first read and can back off and retry.
func (s *Server) rejectBusy(conn net.Conn) {
	defer conn.Close()
	out, err := encodeLine(Response{
		V:     ProtoVersion,
		Code:  CodeBusy,
		Error: "server busy: connection limit reached, retry later",
	})
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(out); err != nil {
		s.logger.Printf("rejecting %s: %v", conn.RemoteAddr(), err)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	return s.Serve(l)
}

// Addr returns the listening address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting and drains: idle connections are released
// immediately, in-flight requests get up to DrainTimeout to finish and
// deliver their responses, then any stragglers are force-closed. The
// database itself is not closed; the caller owns it. Close is idempotent,
// and every call waits for the drain to complete, so a caller racing a
// concurrent Close still gets the "handlers finished" guarantee on return.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	close(s.done) // replication streams see this and end promptly
	l := s.listener
	drain := s.DrainTimeout
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	// Poke every connection out of a blocked read: handlers parked waiting
	// for the next request wake immediately and see the shutdown, while a
	// handler mid-request keeps running to deliver its response.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
		s.mu.Lock()
		n := len(s.conns)
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		if n > 0 {
			s.logger.Printf("drain timeout after %s: force-closed %d connections", drain, n)
		}
		<-done
	}
	return err
}

// closing reports whether Close has begun.
func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) handle(conn net.Conn) {
	mConnsTotal.Inc()
	mConnsOpen.Inc()
	defer func() {
		mConnsOpen.Dec()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	ses := tquel.NewSession(s.db)
	if s.QueryTracer != nil {
		ses.SetTracer(s.QueryTracer)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	w := bufio.NewWriter(conn)
	loggedProto := false
	for {
		// Arm the per-request deadline before checking for shutdown, never
		// after: Close sets closed (under s.mu) before it pokes read
		// deadlines, so if its poke landed first and the line above just
		// overwrote it, closing() is already observably true here and the
		// connection still exits promptly instead of idling to its timeout.
		if t := s.ReadTimeout; t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		}
		if s.closing() {
			return
		}
		if !sc.Scan() {
			break
		}
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		start := time.Now()
		var req Request
		resp := Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			mMalformedTotal.Inc()
			s.logger.Printf("malformed request from %s: %v", conn.RemoteAddr(), err)
			resp.Code = CodeMalformed
			resp.Error = fmt.Sprintf("malformed request: %v", err)
		} else if !versionOK(req.V) {
			resp.Code = CodeVersion
			resp.Error = fmt.Sprintf("unsupported protocol version %q (server speaks %s)",
				req.V, ProtoVersion)
		} else {
			if !loggedProto {
				// Surface the negotiated protocol version once per
				// connection: in the log for debugging a specific peer, and
				// as a labeled counter for fleet-wide version skew.
				loggedProto = true
				label := protoLabel(req.V)
				obs.Default.Counter(
					fmt.Sprintf("tdb_server_proto_connections_total{version=%q}", label),
					"Connections by negotiated protocol version.").Inc()
				s.logger.Printf("conn %s: protocol %s", conn.RemoteAddr(), label)
			}
			switch strings.TrimSpace(req.Cmd) {
			case "repl":
				// The connection becomes a one-way replication feed and
				// never returns to the request loop.
				s.serveRepl(conn, w, req)
				return
			case "batch":
				if !versionAtLeast(req.V, 1, 2) {
					// A pre-1.2 client cannot knowingly send "batch" — its
					// JSON would carry the statements in a field it ignores —
					// so refuse rather than execute an empty "src" silently.
					resp.Code = CodeVersion
					resp.Error = fmt.Sprintf(
						"the batch command requires protocol 1.2 (request declared %q)", req.V)
				} else {
					resp = s.execBatch(ses, req.Batch)
				}
			case "":
				if req.Cmd != "" {
					// Whitespace-only command: an unknown command, not source.
					resp = s.handleCmd(req.Cmd)
					break
				}
				outs, err := ses.Exec(req.Src)
				resp.Outcomes = wireOutcomes(outs)
				if err != nil {
					resp.Error = err.Error()
					if s.readOnlyErr(err) {
						resp.Code = CodeReadOnly
					}
				}
			default:
				resp = s.handleCmd(req.Cmd)
			}
		}
		resp.V = ProtoVersion
		resp.Commit = int64(s.db.LastCommit())
		out, err := encodeLine(resp)
		if err != nil {
			s.logger.Printf("encoding response: %v", err)
			return
		}
		if t := s.WriteTimeout; t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		elapsed := time.Since(start)
		mCommandsTotal.Inc()
		mCommandSeconds.Observe(elapsed.Seconds())
		if t := s.SlowQueryThreshold; t > 0 && elapsed >= t {
			mSlowTotal.Inc()
			s.logger.Printf("slow query from %s (%s): %s",
				conn.RemoteAddr(), elapsed, truncate(req.Src, 200))
		}
	}
	// A scanner error here is a protocol violation or transport failure
	// that forced the disconnect — count and log it rather than dropping it
	// silently. bufio.ErrTooLong is the malformed-protocol case: a frame
	// over maxLine. A deadline pop is either the shutdown poke (quiet) or
	// the idle timeout disconnecting a stalled client.
	if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		switch {
		case errors.Is(err, bufio.ErrTooLong):
			mMalformedTotal.Inc()
			s.logger.Printf("malformed protocol from %s: %v (disconnecting)",
				conn.RemoteAddr(), err)
		case errors.Is(err, os.ErrDeadlineExceeded):
			if !s.closing() {
				mTimeoutTotal.Inc()
				s.logger.Printf("idle timeout from %s (disconnecting)", conn.RemoteAddr())
			}
		default:
			s.logger.Printf("connection read: %v", err)
		}
	}
}

// serveRepl turns one accepted connection into a replication feed: the
// handshake request carries the follower's durable cursor, and the server
// ships snapshot and log bytes until the follower disconnects or the
// server shuts down. Replication streams are exempt from ReadTimeout — the
// server never reads again on this connection, and liveness flows the
// other way, through heartbeat writes whose failures end the stream.
func (s *Server) serveRepl(conn net.Conn, w *bufio.Writer, req Request) {
	if !s.db.Replicable() {
		out, err := encodeLine(repl.Msg{T: repl.MsgError,
			Err: "replication requires a log-backed database"})
		if err == nil {
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			w.Write(out)
			w.Flush()
		}
		return
	}
	conn.SetReadDeadline(time.Time{}) // cancel the per-request deadline
	s.logger.Printf("repl: %s streaming from epoch %d offset %d",
		conn.RemoteAddr(), req.Epoch, req.Offset)
	send := func(m repl.Msg) error {
		out, err := encodeLine(m)
		if err != nil {
			return err
		}
		if t := s.WriteTimeout; t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		}
		if _, err := w.Write(out); err != nil {
			return err
		}
		return w.Flush()
	}
	err := repl.Stream(s.db, repl.Cursor{Epoch: req.Epoch, Offset: req.Offset}, send,
		repl.StreamOptions{Heartbeat: s.ReplHeartbeat, Stop: s.done})
	if err != nil {
		s.logger.Printf("repl: stream to %s failed: %v", conn.RemoteAddr(), err)
	} else {
		s.logger.Printf("repl: stream to %s ended", conn.RemoteAddr())
	}
}

// wireOutcomes converts session outcomes to their wire form.
func wireOutcomes(outs []*tquel.Outcome) []Outcome {
	var wired []Outcome
	for _, o := range outs {
		wire := Outcome{Stmt: o.Stmt, Msg: o.Msg}
		if o.Result != nil {
			wire.Table = o.Result.String()
			wire.Rows = o.Result.Len()
			wire.Msg = ""
		}
		wired = append(wired, wire)
	}
	return wired
}

// readOnlyErr reports whether an execution error is this follower refusing
// a mutation — the structured "readonly" code that tells routing clients
// to go to the primary.
func (s *Server) readOnlyErr(err error) bool {
	return s.db.IsReadOnly() && strings.Contains(err.Error(), "read-only")
}

// execBatch runs a batch command's statements in order on the connection's
// session, stopping at the first failure. Per the wire contract, the
// response carries one BatchItem per attempted statement; statements that
// committed before a failure stay committed.
func (s *Server) execBatch(ses *tquel.Session, stmts []string) Response {
	var resp Response
	for i, src := range stmts {
		outs, err := ses.Exec(src)
		item := BatchItem{Outcomes: wireOutcomes(outs)}
		mBatchStmtsTotal.Inc()
		if err != nil {
			item.Error = err.Error()
			if s.readOnlyErr(err) {
				item.Code = CodeReadOnly
				resp.Code = CodeReadOnly
			}
			resp.Batch = append(resp.Batch, item)
			resp.Error = fmt.Sprintf("batch statement %d: %s", i, err)
			return resp
		}
		resp.Batch = append(resp.Batch, item)
	}
	return resp
}

// protoLabel buckets a client's protocol version for the per-connection
// metric: exact known versions pass through, same-major strangers collapse
// to "MAJOR.x", anything else to "other", and a missing version (a
// pre-versioning client) to "legacy". Bucketing keeps client-supplied
// strings out of metric names.
func protoLabel(v string) string {
	switch {
	case v == "":
		return "legacy"
	case v == ProtoVersion || v == "1.0" || v == "1.1":
		return v
	case protoMajor(v) == protoMajor(ProtoVersion):
		return protoMajor(v) + ".x"
	default:
		return "other"
	}
}

// handleCmd serves the admin commands carried by Request.Cmd through the
// shared verb registry (internal/command) — the same set the REPL and
// tdbcli dispatch, so a new verb registers once and works everywhere. A
// disabled cache still answers "cache" (zeroed stats with max_bytes 0) so
// operators can tell "off" from "cold".
func (s *Server) handleCmd(cmd string) Response {
	res, err := command.Dispatch(s.db, cmd)
	if err != nil {
		return Response{Error: err.Error()}
	}
	resp := Response{Cache: res.Cache}
	if res.Text != "" {
		resp.Outcomes = []Outcome{{Stmt: res.Stmt, Msg: res.Text}}
	}
	return resp
}

// truncate bounds a string for log lines.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
