// Package server exposes a temporal database over TCP with a newline-
// delimited JSON protocol, plus the matching client. Each connection gets
// its own TQuel session, so range-variable declarations persist for the
// life of the connection, as in an interactive Quel terminal.
//
// # Wire contract
//
// One JSON object per line in each direction, strictly request/response:
//
//	-> {"v": "1.0", "src": "range of f is faculty retrieve (f.rank)"}
//	<- {"v": "1.0", "outcomes": [{"stmt": "range", "msg": "..."},
//	                             {"stmt": "retrieve", "table": "...", "rows": 2}]}
//
// Versioning: both sides carry a protocol version "MAJOR.MINOR" in "v".
// A request whose major version differs from the server's is rejected with
// code "version"; a request with no "v" at all is treated as the current
// major (pre-versioning clients). Minor versions are additive: unknown
// fields are ignored, so a newer minor on either side is harmless.
//
// Errors are reported per request: {"error": "tquel: 1:10: ..."}; the
// connection stays usable. Structured failures additionally carry "code":
//
//	"busy"      — the server is at its connection cap (or draining); the
//	              connection is closed after this response. Retry later;
//	              Client.Do does so automatically with backoff.
//	"version"   — major protocol version mismatch; connection stays open.
//	              Also returned (1.2+) when a "batch" request arrives from
//	              a client that declared a minor below 1.2 or none at all.
//	"malformed" — the request line was not decodable JSON.
//
// # Batches and pipelining (1.2+)
//
// A request with "cmd":"batch" carries its statements in "batch", an array
// of TQuel sources, and receives exactly one response line whose "batch"
// array holds one item — outcomes plus an optional per-item error — per
// *attempted* statement, in request order:
//
//	-> {"v": "1.2", "cmd": "batch", "batch": ["append to s (...)", "append to s (...)"]}
//	<- {"v": "1.2", "batch": [{"outcomes": [...]}, {"outcomes": [...]}]}
//
// Mid-batch error semantics: execution stops at the first failing
// statement. The response's "batch" array then ends with that statement's
// item (carrying its error), later statements are not attempted (their
// items are absent — len(batch) tells how far execution got), and the
// top-level "error" mirrors the failure. Statements are independent
// transactions: the ones that succeeded before the failure are committed
// and are NOT rolled back. A batch is rejected wholesale with code
// "version" when the client's declared version predates 1.2 — a 1.1 client
// cannot have its unknown-field batch silently executed as an empty "src".
//
// Pipelining: because every request yields exactly one response line and
// responses are written in request order, a client may write any number of
// request lines before reading responses (Client.Pipeline). The server
// needs no awareness of this — it reads, executes, and answers strictly in
// order — so pipelining composes with batches and with 1.0/1.1 requests on
// the same connection.
//
// A line over 1 MiB in either direction is a protocol violation and the
// connection is dropped. On shutdown the server stops accepting, lets
// in-flight requests finish (up to its drain timeout), then closes.
package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"tdb/internal/qcache"
)

// ProtoVersion is the protocol version this package speaks, as
// "MAJOR.MINOR". Majors must match between client and server; minors are
// additive. 1.1 added the "repl" streaming command, the request cursor
// fields it carries, and the commit stamp on every response. 1.2 added the
// multi-statement "batch" command and response-ordered pipelining — also
// additive, so 1.0 and 1.1 clients interoperate unchanged (except that
// "batch" itself is refused below 1.2; see the wire contract).
const ProtoVersion = "1.2"

// Response codes for structured failures (Response.Code).
const (
	// CodeBusy marks a rejection at the server's connection cap; the server
	// closes the connection after sending it.
	CodeBusy = "busy"
	// CodeVersion marks a major protocol version mismatch.
	CodeVersion = "version"
	// CodeMalformed marks an undecodable request line.
	CodeMalformed = "malformed"
	// CodeReadOnly marks a mutation sent to a replication follower; route
	// the statement to the primary instead. The connection stays open.
	CodeReadOnly = "readonly"
)

// Request is one client message: TQuel source to execute, or an admin
// command when Cmd is set (Src is ignored then). Supported commands:
// "cache" (report query-cache statistics), "cache clear" (drop every
// cached result), and "repl" (1.1+: switch the connection into a one-way
// replication feed resuming from the Epoch/Offset cursor; see
// docs/replication.md). V carries the client's protocol version; empty
// means a pre-versioning client, accepted as the current major.
type Request struct {
	V   string `json:"v,omitempty"`
	Src string `json:"src"`
	Cmd string `json:"cmd,omitempty"`
	// Batch carries the statements of a "batch" command (1.2+), executed
	// in order on the connection's session with stop-on-first-error
	// semantics (see the wire contract). Ignored by every other command.
	Batch []string `json:"batch,omitempty"`
	// Epoch and Offset are the follower's resume cursor for the "repl"
	// command: the checkpoint era of its local log and that log's size in
	// bytes. Ignored by every other command.
	Epoch  uint64 `json:"epoch,omitempty"`
	Offset int64  `json:"offset,omitempty"`
}

// Outcome mirrors tquel.Outcome for the wire.
type Outcome struct {
	// Stmt is the statement kind ("retrieve", "create", ...).
	Stmt string `json:"stmt"`
	// Msg is the status line for non-retrieve statements.
	Msg string `json:"msg,omitempty"`
	// Table is the rendered resultset for retrieve statements.
	Table string `json:"table,omitempty"`
	// Rows is the resultset cardinality for retrieve statements.
	Rows int `json:"rows"`
}

// BatchItem is one statement's result inside a batch response: the
// outcomes it produced and, if it failed, its error. The response's Batch
// slice holds one item per attempted statement, in request order.
type BatchItem struct {
	Outcomes []Outcome `json:"outcomes,omitempty"`
	// Error is the statement's failure; execution of the batch stopped
	// here. Statements that committed before it stay committed.
	Error string `json:"error,omitempty"`
	// Code classifies a structured per-statement failure (currently only
	// "readonly"); empty otherwise.
	Code string `json:"code,omitempty"`
}

// Response is one server message.
type Response struct {
	// V is the server's protocol version.
	V        string    `json:"v,omitempty"`
	Outcomes []Outcome `json:"outcomes,omitempty"`
	// Batch carries the per-statement results of a "batch" command (1.2+),
	// one entry per attempted statement in request order.
	Batch []BatchItem `json:"batch,omitempty"`
	// Cache carries query-cache statistics for the "cache" command.
	Cache *qcache.Stats `json:"cache,omitempty"`
	// Error is set when execution failed; outcomes of statements that
	// succeeded before the failure are still included.
	Error string `json:"error,omitempty"`
	// Code classifies structured failures ("busy", "version", "malformed",
	// "readonly"); empty for execution errors and successes.
	Code string `json:"code,omitempty"`
	// Commit is the serving database's latest commit chronon at response
	// time (1.1+). Replica-aware clients compare it against the highest
	// commit they have seen to bound read staleness.
	Commit int64 `json:"commit,omitempty"`
}

// maxLine bounds a single protocol line (1 MiB): statements and rendered
// tables are small; anything larger is a protocol violation.
const maxLine = 1 << 20

// protoMajor extracts the major component of a "MAJOR.MINOR" version.
func protoMajor(v string) string {
	major, _, _ := strings.Cut(v, ".")
	return major
}

// versionOK reports whether a request version is acceptable: empty (legacy
// client) or the same major as ProtoVersion.
func versionOK(v string) bool {
	return v == "" || protoMajor(v) == protoMajor(ProtoVersion)
}

// versionAtLeast reports whether a declared version is the given major and
// at least the given minor. A legacy (empty) or unparsable version is
// never "at least" anything — features gated on a minor must be asked for
// explicitly, since an older client cannot know it is using them.
func versionAtLeast(v string, major, minor int) bool {
	maj, min, _ := strings.Cut(v, ".")
	gotMajor, err := strconv.Atoi(maj)
	if err != nil || gotMajor != major {
		return false
	}
	gotMinor, err := strconv.Atoi(min)
	if err != nil {
		return false
	}
	return gotMinor >= minor
}

func encodeLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("server: encoding: %w", err)
	}
	return append(b, '\n'), nil
}
