// Package server exposes a temporal database over TCP with a newline-
// delimited JSON protocol, plus the matching client. Each connection gets
// its own TQuel session, so range-variable declarations persist for the
// life of the connection, as in an interactive Quel terminal.
//
// Wire format: one JSON object per line in each direction.
//
//	-> {"src": "range of f is faculty retrieve (f.rank)"}
//	<- {"outcomes": [{"stmt": "range", "msg": "..."},
//	                 {"stmt": "retrieve", "table": "...", "rows": 2}]}
//
// Errors are reported per request: {"error": "tquel: 1:10: ..."}; the
// connection stays usable.
package server

import (
	"encoding/json"
	"fmt"

	"tdb/internal/qcache"
)

// Request is one client message: TQuel source to execute, or an admin
// command when Cmd is set (Src is ignored then). Supported commands:
// "cache" (report query-cache statistics) and "cache clear" (drop every
// cached result).
type Request struct {
	Src string `json:"src"`
	Cmd string `json:"cmd,omitempty"`
}

// Outcome mirrors tquel.Outcome for the wire.
type Outcome struct {
	// Stmt is the statement kind ("retrieve", "create", ...).
	Stmt string `json:"stmt"`
	// Msg is the status line for non-retrieve statements.
	Msg string `json:"msg,omitempty"`
	// Table is the rendered resultset for retrieve statements.
	Table string `json:"table,omitempty"`
	// Rows is the resultset cardinality for retrieve statements.
	Rows int `json:"rows"`
}

// Response is one server message.
type Response struct {
	Outcomes []Outcome `json:"outcomes,omitempty"`
	// Cache carries query-cache statistics for the "cache" command.
	Cache *qcache.Stats `json:"cache,omitempty"`
	// Error is set when execution failed; outcomes of statements that
	// succeeded before the failure are still included.
	Error string `json:"error,omitempty"`
}

// maxLine bounds a single protocol line (1 MiB): statements and rendered
// tables are small; anything larger is a protocol violation.
const maxLine = 1 << 20

func encodeLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("server: encoding: %w", err)
	}
	return append(b, '\n'), nil
}
