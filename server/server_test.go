package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"tdb"
	"tdb/temporal"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := New(db, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	return srv, l.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Exec(`
		create temporal relation faculty (name = string, rank = string) key (name)
		range of f is faculty
		append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever
	`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("exec error: %s", resp.Error)
	}
	if len(resp.Outcomes) != 3 {
		t.Fatalf("outcomes = %+v", resp.Outcomes)
	}
	if resp.Outcomes[0].Stmt != "create" || resp.Outcomes[2].Stmt != "append" {
		t.Errorf("outcome kinds = %+v", resp.Outcomes)
	}

	resp, err = c.Exec(`retrieve (f.name, f.rank)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("query error: %s", resp.Error)
	}
	out := resp.Outcomes[0]
	if out.Rows != 1 || !strings.Contains(out.Table, "Merrie") {
		t.Fatalf("retrieve outcome = %+v", out)
	}
}

// Explain flows through the protocol as an ordinary message outcome: the
// rendered plan arrives in Msg, with no resultset table.
func TestExplainOverProtocol(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if resp, err := c.Exec(`
		create temporal relation faculty (name = string, rank = string) key (name)
		range of f is faculty
		append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever
	`); err != nil || resp.Error != "" {
		t.Fatalf("%v / %+v", err, resp)
	}
	resp, err := c.Exec(`explain retrieve (f.name, f.rank)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("explain error: %s", resp.Error)
	}
	out := resp.Outcomes[0]
	if out.Stmt != "explain" {
		t.Errorf("outcome stmt = %q, want explain", out.Stmt)
	}
	if !strings.HasPrefix(out.Msg, "plan") || !strings.Contains(out.Msg, "dispatch:") {
		t.Errorf("explain msg = %q, want a rendered plan", out.Msg)
	}
	if out.Table != "" || out.Rows != 0 {
		t.Errorf("explain carried a resultset: %+v", out)
	}
}

func TestSessionStatePerConnection(t *testing.T) {
	_, addr := startServer(t)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if resp, err := c1.Exec(`create static relation r (x = string)
		range of v is r`); err != nil || resp.Error != "" {
		t.Fatalf("%v / %+v", err, resp)
	}
	// c2 sees the relation (shared database) but not c1's range variable.
	if resp, err := c2.Exec(`append to r (x = "hello")`); err != nil || resp.Error != "" {
		t.Fatalf("%v / %+v", err, resp)
	}
	resp, err := c2.Exec(`retrieve (v.x)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("c2 must not see c1's range variable")
	}
	// c1's variable still works, and sees c2's append.
	resp, err = c1.Exec(`retrieve (v.x)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Outcomes[0].Rows != 1 {
		t.Fatalf("c1 retrieve = %+v", resp)
	}
}

func TestExecutionErrorKeepsConnectionUsable(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exec(`retrieve (ghost.x)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("expected execution error")
	}
	resp, err = c.Exec(`create static relation ok (x = int)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("connection unusable after error: %s", resp.Error)
	}
}

func TestMalformedRequestReported(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "this is not json\n"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "malformed request") {
		t.Fatalf("response = %s", buf[:n])
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := setup.Exec(`create temporal relation log (client = string, seq = int) key (client, seq)`); err != nil || resp.Error != "" {
		t.Fatalf("%v / %+v", err, resp)
	}
	setup.Close()

	const clients, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < per; i++ {
				src := fmt.Sprintf(`append to log (client = "c%d", seq = %d)`, g, i)
				resp, err := c.Exec(src)
				if err != nil {
					errs <- err
					return
				}
				if resp.Error != "" {
					errs <- fmt.Errorf("exec: %s", resp.Error)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exec(`range of l is log
		retrieve (l.client, l.seq)`)
	if err != nil || resp.Error != "" {
		t.Fatalf("%v / %+v", err, resp)
	}
	if got := resp.Outcomes[len(resp.Outcomes)-1].Rows; got != clients*per {
		t.Fatalf("rows = %d, want %d", got, clients*per)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close:", err)
	}
}

func BenchmarkClientRoundTrip(b *testing.B) {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	srv := New(db, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Exec(`create static relation r (x = string)
		range of v is r
		append to r (x = "hello")`); err != nil || resp.Error != "" {
		b.Fatalf("%v / %+v", err, resp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Exec(`retrieve (v.x)`)
		if err != nil || resp.Error != "" {
			b.Fatalf("%v / %+v", err, resp)
		}
	}
}

func TestServerAddrAndListenAndServe(t *testing.T) {
	db, err := tdb.Open("", tdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := New(db, nil)
	if srv.Addr() != nil {
		t.Error("Addr before Serve must be nil")
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	// Wait for the listener to come up.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("listener never came up")
		}
		time.Sleep(time.Millisecond)
	}
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := c.Exec(`create static relation z (x = int)`); err != nil || resp.Error != "" {
		t.Fatalf("%v / %+v", err, resp)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return")
	}
	// Dialing an unserved address fails cleanly.
	if _, err := DialTimeout("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dial to closed port must fail")
	}
	// Listening on a malformed address fails cleanly.
	srv2 := New(db, nil)
	if err := srv2.ListenAndServe("not-an-address:xyz"); err == nil {
		t.Error("bad listen address must fail")
	}
}

// The "cache" and "cache clear" admin commands inspect and reset the
// query result cache over the wire. The database is opened with an
// explicit cache budget so the test is deterministic even when the suite
// runs with TDB_CACHE_BYTES=0 (the cache-off ablation job).
func TestCacheCommand(t *testing.T) {
	db, err := tdb.Open("", tdb.Options{
		Clock:      temporal.NewTickingClock(temporal.Date(1985, 1, 1)),
		CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := New(db, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if resp, err := c.Exec(`
		create static relation cc (x = int) key (x)
		range of v is cc
		append to cc (x = 1)
	`); err != nil || resp.Error != "" {
		t.Fatalf("setup: %v / %+v", err, resp)
	}
	// Same retrieve twice: a miss that populates, then a hit.
	for i := 0; i < 2; i++ {
		if resp, err := c.Exec(`retrieve (v.x)`); err != nil || resp.Error != "" {
			t.Fatalf("retrieve %d: %v / %+v", i, err, resp)
		}
	}
	resp, err := c.Command("cache")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Cache == nil {
		t.Fatalf("cache command response = %+v", resp)
	}
	if resp.Cache.Hits < 1 || resp.Cache.Entries < 1 || resp.Cache.MaxBytes != 1<<20 {
		t.Fatalf("cache stats = %+v", resp.Cache)
	}

	resp, err = c.Command("cache clear")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Cache == nil || resp.Cache.Entries != 0 || resp.Cache.Bytes != 0 {
		t.Fatalf("cache clear response = %+v", resp)
	}
	if len(resp.Outcomes) != 1 || resp.Outcomes[0].Msg != "cache cleared" {
		t.Fatalf("cache clear outcomes = %+v", resp.Outcomes)
	}

	resp, err = c.Command("bogus")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Fatal("unknown command must report an error")
	}
}
