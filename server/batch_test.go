package server

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A batch executes its statements in order on the connection's session and
// returns one item per statement.
func TestProtoBatchHappyPath(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.ExecBatch([]string{
		`create static relation b (x = int)`,
		`append to b (x = 1)`,
		`append to b (x = 2)`,
		`range of r is b retrieve (r.x) where r.x = 2`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("batch failed: %s", resp.Error)
	}
	if len(resp.Batch) != 4 {
		t.Fatalf("got %d batch items, want 4", len(resp.Batch))
	}
	for i, item := range resp.Batch {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
	}
	// The range declaration and the retrieve arrive in the same batch and
	// share the session, and the final item carries the resultset.
	last := resp.Batch[3].Outcomes
	if len(last) == 0 || !strings.Contains(last[len(last)-1].Table, "2") {
		t.Fatalf("retrieve outcome missing resultset: %+v", last)
	}
}

// Mid-batch failure: execution stops at the first failing statement, the
// response holds one item per *attempted* statement with the failure last,
// and earlier statements stay committed — they are independent
// transactions, not a unit of atomicity.
func TestProtoBatchMidBatchError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if resp, err := c.ExecBatch([]string{`create static relation m (x = int)`}); err != nil || resp.Error != "" {
		t.Fatalf("setup batch: %v / %s", err, resp.Error)
	}
	resp, err := c.ExecBatch([]string{
		`append to m (x = 1)`,
		`append to m (nope = 1)`, // unknown attribute: fails
		`append to m (x = 3)`,    // never attempted
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Batch) != 2 {
		t.Fatalf("got %d items, want 2 (stop at first failure)", len(resp.Batch))
	}
	if resp.Batch[0].Error != "" {
		t.Fatalf("first statement failed: %s", resp.Batch[0].Error)
	}
	if resp.Batch[1].Error == "" {
		t.Fatal("failing statement's item carries no error")
	}
	if resp.Error == "" || !strings.Contains(resp.Error, "batch statement 1") {
		t.Fatalf("top-level error %q does not locate the failing statement", resp.Error)
	}

	// The statement before the failure is committed; the one after it never
	// ran.
	check, err := c.Exec(`range of r is m retrieve (r.x)`)
	if err != nil || check.Error != "" {
		t.Fatalf("retrieve: %v / %s", err, check.Error)
	}
	table := check.Outcomes[len(check.Outcomes)-1].Table
	if !strings.Contains(table, "1") {
		t.Fatalf("pre-failure append not committed; table:\n%s", table)
	}
	if strings.Contains(table, "3") {
		t.Fatalf("post-failure append was executed; table:\n%s", table)
	}
}

// Version negotiation: a client that declared a minor below 1.2 (or no
// version at all) cannot issue "batch" — the server refuses with a
// structured code instead of misreading the request as an empty "src".
func TestProtoBatchVersionNegotiation(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, v := range []string{"1.1", "1.0", ""} {
		resp, err := c.send(Request{V: v, Cmd: "batch", Batch: []string{`retrieve (r.x)`}})
		if err != nil {
			t.Fatalf("v=%q: transport: %v", v, err)
		}
		if resp.Code != CodeVersion {
			t.Fatalf("v=%q: got code %q, want %q (error %q)", v, resp.Code, CodeVersion, resp.Error)
		}
		if len(resp.Batch) != 0 {
			t.Fatalf("v=%q: refused batch still carries items", v)
		}
	}

	// The connection stays usable, and the same batch at 1.2 goes through.
	resp, err := c.send(Request{V: "1.2", Cmd: "batch", Batch: []string{`create static relation v (x = int)`}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Code != "" {
		t.Fatalf("1.2 batch refused: %s / %s", resp.Error, resp.Code)
	}
}

// Pipelining: N requests written before any response is read come back in
// request order, one response per request, including batch commands mixed
// with plain 1.0-shaped execs on the same connection.
func TestProtoPipelineOrdered(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resps, err := c.Pipeline([]Request{
		{Src: `create static relation p (x = int)`},
		{Cmd: "batch", Batch: []string{`append to p (x = 10)`, `append to p (x = 20)`}},
		{Src: `range of r is p retrieve (r.x) where r.x = 20`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	if resps[0].Error != "" || len(resps[0].Outcomes) == 0 {
		t.Fatalf("create response out of order or failed: %+v", resps[0])
	}
	if len(resps[1].Batch) != 2 {
		t.Fatalf("batch response out of order: %+v", resps[1])
	}
	last := resps[2].Outcomes
	if resps[2].Error != "" || len(last) == 0 || !strings.Contains(last[len(last)-1].Table, "20") {
		t.Fatalf("retrieve response out of order or wrong: %+v", resps[2])
	}
}

// A server read deadline that expires while a pipeline is quiet surfaces
// as a transport error on the next window, with the responses already
// received intact and no retry — in-flight pipelined requests carry the
// same delivered-but-unanswered ambiguity as Do's lost responses.
func TestProtoPipelineDeadlineExpiry(t *testing.T) {
	_, addr := startServerWith(t, func(s *Server) { s.ReadTimeout = 150 * time.Millisecond })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resps, err := c.Pipeline([]Request{
		{Src: `create static relation d (x = int)`},
		{Src: `append to d (x = 1)`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("got %d responses, want 2", len(resps))
	}

	time.Sleep(500 * time.Millisecond) // let the per-connection deadline fire

	late, err := c.Pipeline([]Request{
		{Src: `retrieve (d.x)`},
		{Src: `retrieve (d.x)`},
	})
	if err == nil {
		t.Fatal("pipeline succeeded on a connection past its read deadline")
	}
	if len(late) == 2 {
		t.Fatal("full response set despite deadline expiry")
	}
}

// Client.Do must not retry a batch whose response was lost: like any
// delivered mutation, the server may already have executed every statement
// in it, and a blind re-send would double-apply the whole batch.
func TestClientDoBatchDoesNotRetryLostResponse(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var conns atomic.Int64
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func(conn net.Conn) {
				// Swallow the batch, then drop the connection without
				// answering.
				conn.Read(make([]byte, 4096))
				conn.Close()
			}(conn)
		}
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req := Request{Cmd: "batch", Batch: []string{`append to r (x = 1)`, `append to r (x = 2)`}}
	if _, err := c.Do(ctx, req); err == nil {
		t.Fatal("Do succeeded with no response")
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("client opened %d connections, want 1 (no retry after delivery)", got)
	}
}

// The pool routes a batch containing any write to the primary and a
// pure-read batch to a replica.
func TestPoolBatchRouting(t *testing.T) {
	primary, _, _ := newPrimary(t)
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReplHeartbeat = 10 * time.Millisecond
	})
	fdb, _, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)
	_, faddr := serveDB(t, fdb, nil)

	p, err := NewPool(addr, []string{faddr}, PoolOptions{MaxLag: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	if resp, err := p.ExecBatch(ctx, []string{
		`create static relation pb (x = int)`,
		`append to pb (x = 7)`,
	}); err != nil || resp.Error != "" {
		t.Fatalf("write batch: %v / %+v", err, resp)
	}
	if got := p.Stats().Writes; got != 1 {
		t.Fatalf("write batch routed %d writes, want 1", got)
	}
	waitCaughtUp(t, primary, fdb)

	// Declarations broadcast so follow-up reads work on any member.
	if resp, err := p.ExecBatch(ctx, []string{`range of r is pb`}); err != nil || resp.Error != "" {
		t.Fatalf("declaration batch: %v / %+v", err, resp)
	}

	resp, err := p.ExecBatch(ctx, []string{`retrieve (r.x)`})
	if err != nil || resp.Error != "" {
		t.Fatalf("read batch: %v / %+v", err, resp)
	}
	if got := p.Stats().ReplicaReads; got != 1 {
		t.Fatalf("read batch answered by primary (%d replica reads), want replica", got)
	}
	if len(resp.Batch) != 1 || !strings.Contains(resp.Batch[0].Outcomes[len(resp.Batch[0].Outcomes)-1].Table, "7") {
		t.Fatalf("replica batch read missing the replicated row: %+v", resp.Batch)
	}
}
