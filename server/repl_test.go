package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tdb"
	"tdb/internal/repl"
	"tdb/temporal"
	"tdb/tquel"
)

// The wire versions of the request protocol and the replication stream
// move in lock step: the repl handshake is a protocol-1.1 request.
func TestProtoVersionLockstep(t *testing.T) {
	if ProtoVersion != repl.WireVersion {
		t.Fatalf("server.ProtoVersion = %q, repl.WireVersion = %q — bump them together",
			ProtoVersion, repl.WireVersion)
	}
}

// serveDB starts a server over a caller-owned database.
func serveDB(t testing.TB, db *tdb.DB, tune func(*Server)) (*Server, string) {
	t.Helper()
	srv := New(db, nil)
	if tune != nil {
		tune(srv)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after Close")
		}
	})
	return srv, l.Addr().String()
}

// newPrimary opens a disk-backed primary with a settable logical clock and
// loads the paper's faculty history plus the emp join fixture through
// TQuel, exactly as the planner differential suite does.
func newPrimary(t testing.TB) (*tdb.DB, *temporal.LogicalClock, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tdb.wal")
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open(path, tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	ses := tquel.NewSession(db)
	mustExec := func(at temporal.Chronon, src string) {
		t.Helper()
		clock.Set(at)
		if _, err := ses.Exec(src); err != nil {
			t.Fatalf("loading fixture at %v: %v\n%s", at, err, src)
		}
	}
	mustExec(temporal.Date(1977, 1, 1), `
		create temporal relation faculty (name = string, rank = string) key (name)
		create historical relation emp (name = string, dept = string, pay = int) key (name)
		range of f is faculty
	`)
	steps := []struct {
		at  string
		src string
	}{
		{"08/25/77", `append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever`},
		{"12/01/82", `append to faculty (name = "Tom", rank = "full") valid from "12/05/82" to forever`},
		{"12/07/82", `replace f (rank = "associate") where f.name = "Tom" valid from "12/05/82" to forever`},
		{"12/15/82", `replace f (rank = "full") where f.name = "Merrie" valid from "12/01/82" to forever`},
		{"01/10/83", `append to faculty (name = "Mike", rank = "assistant") valid from "01/01/83" to forever`},
		{"02/25/84", `delete f where f.name = "Mike" valid from "03/01/84" to forever`},
	}
	for _, s := range steps {
		mustExec(temporal.MustParse(s.at), s.src)
	}
	depts := []string{"cs", "ee", "math"}
	for i := 0; i < 9; i++ {
		mustExec(temporal.Date(1984, 1, 1+i), fmt.Sprintf(
			`append to emp (name = "p%d", dept = %q, pay = %d) valid from "0%d/01/8%d" to forever`,
			i, depts[i%3], 100+10*(i%4), i%9+1, i%4))
	}
	return db, clock, path
}

// startFollower opens an empty-directory read-only database and runs a
// Follower against addr until the test ends. It returns the database, the
// follower (for Stats), and a stop function that tears the stream down and
// waits for Run to return.
func startFollower(t testing.TB, addr string) (*tdb.DB, *repl.Follower, func()) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tdb.wal")
	return startFollowerAt(t, addr, path)
}

func startFollowerAt(t testing.TB, addr, path string) (*tdb.DB, *repl.Follower, func()) {
	t.Helper()
	fdb, err := tdb.Open(path, tdb.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	f := &repl.Follower{
		Addr:       addr,
		Target:     fdb,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Error("follower Run did not return after cancel")
			}
			fdb.Close()
		})
	}
	t.Cleanup(stop)
	return fdb, f, stop
}

// waitCaughtUp blocks until the follower's cursor and applied commit clock
// equal the primary's position.
func waitCaughtUp(t testing.TB, primary, follower *tdb.DB) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		pe, ps, pc := primary.ReplPosition()
		fe, fs := follower.ReplCursor()
		if pe == fe && ps == fs && follower.LastCommit() == pc {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not catch up: primary (%d,%d,%v), follower (%d,%d,%v)",
				pe, ps, pc, fe, fs, follower.LastCommit())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// corpusDecls are the range variables every corpus query may reference.
const corpusDecls = `
	range of f is faculty
	range of f1 is faculty
	range of f2 is faculty
	range of e1 is emp
	range of e2 is emp
`

// figureQueries are the paper's thirteen figure-shaped retrieves over the
// faculty history: the static projection (Figure 2), the rollback and
// validity variants (Figures 4, 5, 7), the two-variable overlap joins
// (Figures 6 and 8), and state probes at the taxonomy's distinguished
// instants.
var figureQueries = []string{
	`retrieve (f.rank) where f.name = "Merrie"`,
	`retrieve (f.name, f.rank)`,
	`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`,
	`retrieve (f.rank) where f.name = "Merrie" as of "12/20/82"`,
	`retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" when f1 overlap start of f2`,
	`retrieve (f.name) when f overlap "01/15/83"`,
	`retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" when f1 overlap start of f2 as of "12/10/82"`,
	`retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" when f1 overlap start of f2 as of "12/20/82"`,
	`retrieve (f.name, f.rank) when f overlap "now"`,
	`retrieve (f.name) where f.rank = "full"`,
	`retrieve (f.name) when start of f precede "12/10/82"`,
	`retrieve (f.rank) where f.name != "Tom" when not f overlap "06/01/80"`,
	`retrieve (f1.name, f2.name) when f1 overlap f2`,
}

// differentialCorpus regenerates the 60 seeded random retrieves of the
// planner differential suite (same seed, same shape), so the replication
// acceptance check runs the identical corpus.
func differentialCorpus() []string {
	rng := rand.New(rand.NewSource(85)) // SIGMOD 1985
	names := []string{"Merrie", "Tom", "Mike", "p0", "p3", "p7"}
	dates := []string{"06/01/80", "12/10/82", "01/15/83", "now"}
	relOf := map[string]string{"f": "faculty", "f2": "faculty", "e1": "emp", "e2": "emp"}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }

	whereConj := func(v string) string {
		if relOf[v] == "emp" && rng.Intn(2) == 0 {
			return fmt.Sprintf("%s.pay %s %d", v, pick([]string{"<", ">=", "="}), 100+10*rng.Intn(4))
		}
		return fmt.Sprintf("%s.name %s %q", v, pick([]string{"=", "!="}), pick(names))
	}
	whenConj := func(v string) string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%s overlap %q", v, pick(dates))
		case 1:
			return fmt.Sprintf("start of %s precede %q", v, pick(dates))
		default:
			return fmt.Sprintf("not %s overlap %q", v, pick(dates))
		}
	}

	var out []string
	for i := 0; i < 60; i++ {
		vars := []string{pick([]string{"f", "e1"})}
		if rng.Intn(3) > 0 {
			vars = append(vars, pick([]string{"f2", "e2"}))
		}
		var targets, conjs, temps []string
		for _, v := range vars {
			targets = append(targets, v+".name")
			if rng.Intn(2) == 0 {
				conjs = append(conjs, whereConj(v))
			}
			if rng.Intn(2) == 0 {
				temps = append(temps, whenConj(v))
			}
		}
		if len(vars) == 2 {
			switch rng.Intn(3) {
			case 0:
				conjs = append(conjs, fmt.Sprintf("%s.name = %s.name", vars[0], vars[1]))
			case 1:
				if relOf[vars[0]] == "emp" && relOf[vars[1]] == "emp" {
					conjs = append(conjs, fmt.Sprintf("%s.pay = %s.pay", vars[0], vars[1]))
				}
			}
			if rng.Intn(3) == 0 {
				temps = append(temps, fmt.Sprintf("%s overlap %s", vars[0], vars[1]))
			}
		}
		src := "retrieve (" + strings.Join(targets, ", ") + ")"
		if len(conjs) > 0 {
			src += "\nwhere " + strings.Join(conjs, " and ")
		}
		if len(temps) > 0 {
			src += "\nwhen " + strings.Join(temps, " and ")
		}
		allTemporal := true
		for _, v := range vars {
			if relOf[v] != "faculty" {
				allTemporal = false
			}
		}
		if allTemporal && rng.Intn(2) == 0 {
			src += fmt.Sprintf("\nas of %q", pick(dates[:3]))
		}
		out = append(out, src)
	}
	return out
}

// corpusSession opens a query session with the corpus declarations bound.
func corpusSession(t testing.TB, db *tdb.DB) *tquel.Session {
	t.Helper()
	ses := tquel.NewSession(db)
	if _, err := ses.Exec(corpusDecls); err != nil {
		t.Fatal(err)
	}
	return ses
}

// assertCorpusIdentical renders every figure query and every differential
// corpus query on both databases and requires byte-identical results.
func assertCorpusIdentical(t *testing.T, primary, follower *tdb.DB) {
	t.Helper()
	ps := corpusSession(t, primary)
	fs := corpusSession(t, follower)
	corpus := append(append([]string{}, figureQueries...), differentialCorpus()...)
	for i, src := range corpus {
		want, err := ps.Query(src)
		if err != nil {
			t.Fatalf("corpus[%d] on primary: %v\n%s", i, err, src)
		}
		got, err := fs.Query(src)
		if err != nil {
			t.Fatalf("corpus[%d] on follower: %v\n%s", i, err, src)
		}
		if want.String() != got.String() {
			t.Fatalf("corpus[%d] diverges:\n%s\n--- primary ---\n%s\n--- follower ---\n%s",
				i, src, want, got)
		}
	}
}

// The acceptance test: an empty-directory follower catches up to a live
// primary over the wire and answers the thirteen figure queries plus the
// 60-query differential corpus byte-identically; killed and restarted
// mid-stream, it converges to the same state.
func TestReplFollowerCatchUpDifferential(t *testing.T) {
	primary, clock, _ := newPrimary(t)
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReplHeartbeat = 25 * time.Millisecond
	})

	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	fdb, _, stop := startFollowerAt(t, addr, fPath)
	waitCaughtUp(t, primary, fdb)
	assertCorpusIdentical(t, primary, fdb)

	// Kill the follower mid-stream, keep the primary writing, then restart
	// the follower from its surviving directory.
	stop()
	pses := tquel.NewSession(primary)
	if _, err := pses.Exec("range of f is faculty"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		clock.Set(temporal.Date(1985, 6, 1+i))
		if _, err := pses.Exec(fmt.Sprintf(
			`append to faculty (name = "late%d", rank = "assistant") valid from "06/01/85" to forever`, i)); err != nil {
			t.Fatal(err)
		}
	}
	fdb2, _, _ := startFollowerAt(t, addr, fPath)
	waitCaughtUp(t, primary, fdb2)
	assertCorpusIdentical(t, primary, fdb2)
}

// The live-pair differential over columnar segments: with the seal
// threshold forced to 2, the primary's fixture seals into segments, a
// checkpoint installs a snapshot carrying them as encoded blocks, and a
// cold follower restores those blocks over the wire. Both sides must be
// segmented and answer the full corpus byte-identically, including writes
// streamed after the snapshot.
func TestReplSegmentedPrimaryDifferential(t *testing.T) {
	t.Setenv("TDB_DISABLE_SEGMENTS", "") // force segments on even in the ablation CI job
	t.Setenv("TDB_SEGMENT_ROWS", "2")
	primary, clock, _ := newPrimary(t)
	if primary.Stats().Segments == 0 {
		t.Fatal("primary fixture sealed nothing; threshold knob inert")
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReplHeartbeat = 25 * time.Millisecond
	})

	fdb, _, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)
	if fdb.Stats().Segments == 0 {
		t.Fatal("follower restored the shipped snapshot flat")
	}
	assertCorpusIdentical(t, primary, fdb)

	// Writes streamed after the snapshot cross the sealed/tail boundary on
	// both sides.
	pses := tquel.NewSession(primary)
	if _, err := pses.Exec("range of f is faculty"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		clock.Set(temporal.Date(1985, 7, 1+i))
		if _, err := pses.Exec(fmt.Sprintf(
			`append to faculty (name = "seg%d", rank = "assistant") valid from "07/01/85" to forever`, i)); err != nil {
			t.Fatal(err)
		}
	}
	waitCaughtUp(t, primary, fdb)
	assertCorpusIdentical(t, primary, fdb)
}

// A checkpoint on the primary mid-stream rolls the epoch; the connected
// follower re-syncs through the shipped snapshot and keeps applying.
func TestReplCheckpointMidStream(t *testing.T) {
	primary, clock, _ := newPrimary(t)
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReplHeartbeat = 25 * time.Millisecond
	})
	fdb, f, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)

	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pses := tquel.NewSession(primary)
	clock.Set(temporal.Date(1986, 1, 1))
	if _, err := pses.Exec(`append to emp (name = "pX", dept = "cs", pay = 170) valid from "01/01/86" to forever`); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, fdb)
	if e, _ := fdb.ReplCursor(); e != 1 {
		t.Fatalf("follower era after checkpoint = %d, want 1", e)
	}
	if st := f.Stats(); st.SnapshotsInstalled == 0 {
		t.Error("follower installed no snapshot across the epoch rollover")
	}
	assertCorpusIdentical(t, primary, fdb)
}

// Satellite regression: a replication stream that is quiet (no writes) but
// alive must survive the server's per-connection read timeout — repl
// connections are exempt, with liveness carried by heartbeats.
func TestReplStreamSurvivesReadTimeout(t *testing.T) {
	primary, clock, _ := newPrimary(t)
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReadTimeout = 100 * time.Millisecond
		s.ReplHeartbeat = 25 * time.Millisecond
	})
	fdb, f, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)

	// Several read-timeout periods of silence: no writes flow, only
	// heartbeats. The stream must hold.
	time.Sleep(500 * time.Millisecond)
	st := f.Stats()
	if !st.Connected {
		t.Fatalf("stream died during quiet period: %+v", st)
	}
	if st.Reconnects != 0 {
		t.Fatalf("stream reconnected %d times during quiet period (last error %q)",
			st.Reconnects, st.LastError)
	}
	// And a write after the quiet period still arrives.
	pses := tquel.NewSession(primary)
	clock.Set(temporal.Date(1987, 1, 1))
	if _, err := pses.Exec(`append to emp (name = "quiet", dept = "ee", pay = 130) valid from "01/01/87" to forever`); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, primary, fdb)
}

// A follower's server refuses mutations with the typed readonly code and
// keeps the connection usable.
func TestFollowerServerRefusesWrites(t *testing.T) {
	primary, _, _ := newPrimary(t)
	_, addr := serveDB(t, primary, nil)
	fdb, _, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)
	_, faddr := serveDB(t, fdb, nil)

	c, err := Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exec(`create static relation nope (x = int)`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeReadOnly {
		t.Fatalf("mutation on follower: code %q (error %q), want %q", resp.Code, resp.Error, CodeReadOnly)
	}
	// Reads still work on the same connection.
	resp, err = c.Exec("range of f is faculty\nretrieve (f.name, f.rank)")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("read on follower after refused write: %s", resp.Error)
	}
}

// Reads race applies: concurrent clients query the follower's server while
// the primary keeps committing. Run under -race, this is the apply-path
// synchronization test.
func TestConcurrentReplicaReads(t *testing.T) {
	primary, clock, _ := newPrimary(t)
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReplHeartbeat = 10 * time.Millisecond
	})
	fdb, _, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)
	_, faddr := serveDB(t, fdb, nil)

	stopWrites := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		ses := tquel.NewSession(primary)
		for i := 0; ; i++ {
			select {
			case <-stopWrites:
				return
			default:
			}
			clock.Set(temporal.Date(1990, 1, 1) + temporal.Chronon(i))
			if _, err := ses.Exec(fmt.Sprintf(
				`append to emp (name = "w%d", dept = "cs", pay = %d) valid from "01/01/90" to forever`,
				i, 100+i%50)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			c, err := Dial(faddr)
			if err != nil {
				t.Errorf("reader dial: %v", err)
				return
			}
			defer c.Close()
			if _, err := c.Exec("range of f is faculty\nrange of e1 is emp"); err != nil {
				t.Errorf("reader decls: %v", err)
				return
			}
			for i := 0; i < 25; i++ {
				resp, err := c.Exec(`retrieve (f.name, f.rank)`)
				if err != nil || resp.Error != "" {
					t.Errorf("reader retrieve: %v %s", err, resp.Error)
					return
				}
				if resp.Commit == 0 {
					t.Error("follower response carries no commit stamp")
					return
				}
				if _, err := c.Exec(`retrieve (e1.name) where e1.pay >= 120`); err != nil {
					t.Errorf("reader emp retrieve: %v", err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stopWrites)
	writer.Wait()
	waitCaughtUp(t, primary, fdb)
	assertCorpusIdentical(t, primary, fdb)
}

// The pool fans reads across replicas under the staleness bound, sends
// writes to the primary, and falls back to the primary when a replica is
// too far behind or refuses.
func TestPoolReadFanout(t *testing.T) {
	primary, _, _ := newPrimary(t)
	_, addr := serveDB(t, primary, func(s *Server) {
		s.ReplHeartbeat = 10 * time.Millisecond
	})
	fdb1, _, _ := startFollower(t, addr)
	fdb2, _, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb1)
	waitCaughtUp(t, primary, fdb2)
	_, faddr1 := serveDB(t, fdb1, nil)
	_, faddr2 := serveDB(t, fdb2, nil)

	pool, err := NewPool(addr, []string{faddr1, faddr2}, PoolOptions{MaxLag: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()

	if _, err := pool.Exec(ctx, corpusDecls); err != nil {
		t.Fatal(err)
	}
	// A write routes to the primary.
	resp, err := pool.Exec(ctx, `append to emp (name = "pool", dept = "cs", pay = 160) valid from "01/01/88" to forever`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("pool write: %s", resp.Error)
	}
	// Reads after the write must see it — replicas under MaxLag 0 either
	// have caught up or the pool re-runs on the primary.
	for i := 0; i < 20; i++ {
		resp, err := pool.Exec(ctx, `retrieve (e1.name) where e1.name = "pool"`)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Error != "" {
			t.Fatalf("pool read: %s", resp.Error)
		}
		if len(resp.Outcomes) == 0 || resp.Outcomes[len(resp.Outcomes)-1].Rows != 1 {
			t.Fatalf("read-your-writes violated on iteration %d: %+v", i, resp.Outcomes)
		}
	}
	st := pool.Stats()
	if st.Writes == 0 || st.Reads == 0 {
		t.Fatalf("pool routing stats: %+v", st)
	}
	if st.ReplicaReads+st.StaleFallbacks+st.ErrorFallbacks != st.Reads {
		t.Fatalf("read accounting does not add up: %+v", st)
	}
	waitCaughtUp(t, primary, fdb1)
	waitCaughtUp(t, primary, fdb2)
	// With both replicas caught up and no new writes, reads fan out.
	for i := 0; i < 10; i++ {
		if _, err := pool.Exec(ctx, `retrieve (f.name, f.rank)`); err != nil {
			t.Fatal(err)
		}
	}
	if st := pool.Stats(); st.ReplicaReads == 0 {
		t.Fatalf("no reads landed on replicas: %+v", st)
	}
}

// An unreachable replica degrades the pool to primary-only reads instead
// of failing them.
func TestPoolFallsBackOnDeadReplica(t *testing.T) {
	primary, _, _ := newPrimary(t)
	_, addr := serveDB(t, primary, nil)
	fdb, _, _ := startFollower(t, addr)
	waitCaughtUp(t, primary, fdb)
	fsrv, faddr := serveDB(t, fdb, nil)

	pool, err := NewPool(addr, []string{faddr}, PoolOptions{MaxLag: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	if _, err := pool.Exec(ctx, "range of f is faculty"); err != nil {
		t.Fatal(err)
	}
	fsrv.Close() // the replica's server dies; its pool connection breaks
	resp, err := pool.Exec(ctx, `retrieve (f.name)`)
	if err != nil {
		t.Fatalf("read with dead replica: %v", err)
	}
	if resp.Error != "" {
		t.Fatalf("read with dead replica: %s", resp.Error)
	}
	if st := pool.Stats(); st.ErrorFallbacks == 0 {
		t.Fatalf("dead replica did not register a fallback: %+v", st)
	}
}

// Satellite regression: a context cancelled while Do is backing off
// between busy retries must abort the retry loop promptly with the
// context's error.
func TestClientDoContextCancelMidRetry(t *testing.T) {
	_, addr := startServerWith(t, func(s *Server) { s.MaxConns = 1 })

	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.Exec(`create static relation hold (x = int)`); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let Do burn its first attempt (busy) and enter backoff, then pull
		// the plug mid-retry.
		time.Sleep(75 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Do(ctx, Request{Src: `retrieve (v.x)`})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do after cancel: %v, want context.Canceled in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do took %s to honor cancellation", elapsed)
	}
}
