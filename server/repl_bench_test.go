package server

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"tdb"
	"tdb/internal/repl"
	"tdb/temporal"
	"tdb/tquel"
)

// benchPrimary serves a primary carrying the paper history plus extra emp
// rows so catch-up moves a non-trivial log.
func benchPrimary(b *testing.B, extra int) (*tdb.DB, string) {
	b.Helper()
	primary, clock, _ := newPrimary(b)
	ses := tquel.NewSession(primary)
	for i := 0; i < extra; i++ {
		clock.Set(temporal.Date(1991, 1, 1) + temporal.Chronon(i))
		if _, err := ses.Exec(fmt.Sprintf(
			`append to emp (name = "b%d", dept = "cs", pay = %d) valid from "01/01/91" to forever`,
			i, 100+i%40)); err != nil {
			b.Fatal(err)
		}
	}
	_, addr := serveDB(b, primary, func(s *Server) {
		s.ReplHeartbeat = time.Second
	})
	return primary, addr
}

// BenchmarkReplicaCatchup measures a cold follower: empty directory to
// fully caught up over the wire — dial, handshake, ship, apply.
func BenchmarkReplicaCatchup(b *testing.B) {
	primary, addr := benchPrimary(b, 500)
	pe, ps, pc := primary.ReplPosition()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(b.TempDir(), "replica.wal")
		fdb, err := tdb.Open(path, tdb.Options{ReadOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		f := &repl.Follower{Addr: addr, Target: fdb, MinBackoff: time.Millisecond}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			f.Run(ctx)
		}()
		for {
			fe, fs := fdb.ReplCursor()
			if fe == pe && fs == ps && fdb.LastCommit() == pc {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
		<-done
		fdb.Close()
	}
}

// BenchmarkReadFanout measures one pool read round-robined across two live
// replicas under the staleness bound.
func BenchmarkReadFanout(b *testing.B) {
	primary, addr := benchPrimary(b, 100)
	fdb1, _, _ := startFollower(b, addr)
	fdb2, _, _ := startFollower(b, addr)
	waitCaughtUp(b, primary, fdb1)
	waitCaughtUp(b, primary, fdb2)
	_, faddr1 := serveDB(b, fdb1, nil)
	_, faddr2 := serveDB(b, fdb2, nil)

	pool, err := NewPool(addr, []string{faddr1, faddr2}, PoolOptions{MaxLag: 0})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	if _, err := pool.Exec(ctx, "range of f is faculty"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := pool.Exec(ctx, `retrieve (f.name, f.rank)`)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Error != "" {
			b.Fatal(resp.Error)
		}
	}
	b.StopTimer()
	if st := pool.Stats(); st.ReplicaReads == 0 {
		b.Fatalf("no reads landed on replicas: %+v", st)
	}
}
