package taxonomy

// PriorTime is one row of Figure 1: how a prior publication characterized
// a kind of time, in terms of the paper's three attributes. The string
// fields preserve the figure's annotations (footnotes (1)-(4)).
type PriorTime struct {
	Reference      string
	Terminology    string
	AppendOnly     string // "Yes", "No", or an annotated variant
	AppIndependent string
	Representation string // "Representation", "Reality", or annotated/blank
}

// Figure1 is the paper's survey of previous characterizations of time.
var Figure1 = []PriorTime{
	{"[Ariav & Morgan 1982]", "Time", "Yes", "Yes", "Representation"},
	{"[Ben-Zvi 1982]", "Registration", "Yes", "Yes", "Representation"},
	{"[Ben-Zvi 1982]", "Effective", "No", "Yes", "Reality"},
	{"[Clifford & Warren 1983]", "State", "No", "Yes", ""},
	{"[Copeland & Maier 1984]", "Transaction", "Yes", "Yes", "Representation"},
	{"[Copeland & Maier 1984]", "Event (1)", "No", "No", "Reality"},
	{"[Dadam et al. 1984] & [Lum et al. 1984]", "Physical", "(2)", "Yes", "Representation"},
	{"[Dadam et al. 1984] & [Lum et al. 1984]", "Logical (1)", "No", "No", "Reality"},
	{"[Jones et al. 1979] & [Jones & Mason 1980]", "Start/End", "(2)", "Yes", "Reality"},
	{"[Jones et al. 1979] & [Jones & Mason 1980]", "User Defined", "No", "No", "Reality"},
	{"[Mueller & Steinbauer 1983]", "Data-Valid-Time-From/To", "(3)", "Yes", "Representation (4)"},
	{"[Reed 1978]", "Start/End", "Yes", "Yes", "Representation"},
	{"[Snodgrass 1984]", "Valid Time", "No", "Yes", "Reality"},
}

// Figure1Notes are the figure's footnotes.
var Figure1Notes = []string{
	"(1) Not actually supported by the system",
	"(2) Can make corrections only",
	"(3) Can make changes only in the future",
	"(4) Reality is indicated only in the future",
}

// SystemSupport is one row of Figure 13: which of the three (new) kinds of
// time an existing or proposed system supported.
type SystemSupport struct {
	Reference   string
	System      string
	Transaction bool
	Valid       bool
	UserDefined bool
}

// Figure13 is the paper's classification of existing and proposed systems
// under the new taxonomy.
var Figure13 = []SystemSupport{
	{"[Ariav & Morgan 1982]", "MDM/DB", true, false, false},
	{"[Ben-Zvi 1982]", "TRM", true, true, false},
	{"[Bontempo 1983]", "QBE", false, false, true},
	{"[Breutmann et al. 1979]", "CSL", false, true, false},
	{"[Clifford & Warren 1983]", "IL_s", false, true, false},
	{"[Copeland & Maier 1984]", "GemStone", true, false, false},
	{"[Findler & Chen 1971]", "AMPPL-II", false, true, false},
	{"[Jones & Mason 1980]", "LEGOL 2.0", false, true, true},
	{"[Klopprogge 1981]", "TERM", false, true, false},
	{"[Lum et al. 1984]", "AIM", true, false, false},
	{"[Relational 1984]", "MicroINGRES", false, false, true},
	{"[Mueller & Steinbauer 1983]", "", true, false, false},
	{"[Overmyer & Stonebraker 1982]", "INGRES", false, false, true},
	{"[Reed 1978]", "SWALLOW", true, false, false},
	{"[Snodgrass 1985]", "TQuel", true, true, true},
	{"[Tandem 1983]", "ENFORM", false, false, true},
	{"[Wiederhold et al. 1975]", "TODS", false, true, false},
}

// Classify returns the taxonomy cell a system occupies given the times it
// supports (user-defined time does not affect the cell: it is ordinary
// data).
func Classify(transaction, valid bool) (kind string) {
	switch {
	case transaction && valid:
		return "temporal"
	case transaction:
		return "static rollback"
	case valid:
		return "historical"
	default:
		return "static"
	}
}
