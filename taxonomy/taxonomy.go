// Package taxonomy encodes the classification that is the paper's actual
// contribution: the three kinds of time (Figure 12), the four kinds of
// database they induce (Figures 10 and 11), the survey of prior
// terminology (Figure 1) and of system support (Figure 13).
//
// Figures 10-12 are not just data: Probe derives each database kind's row
// by exercising a live store — inserting, correcting, and then checking
// which questions the store can still answer — so the classification is an
// executable property of the implementation rather than a transcription.
package taxonomy

import (
	"fmt"

	"tdb"
	"tdb/temporal"
)

// TimeKind is one of the paper's three kinds of time.
type TimeKind uint8

const (
	// TransactionTime is when the information was stored in the database:
	// append-only, application-independent, modeling the representation.
	TransactionTime TimeKind = iota
	// ValidTime is when the stored information was true in reality:
	// correctable, application-independent, modeling reality.
	ValidTime
	// UserDefinedTime is temporal information the DBMS does not interpret:
	// correctable, application-dependent, modeling reality.
	UserDefinedTime
)

var timeKindNames = [...]string{
	TransactionTime: "Transaction",
	ValidTime:       "Valid",
	UserDefinedTime: "User-defined",
}

// String returns the paper's name for the time kind.
func (k TimeKind) String() string {
	if int(k) < len(timeKindNames) {
		return timeKindNames[k]
	}
	return fmt.Sprintf("TimeKind(%d)", uint8(k))
}

// TimeAttributes are the three differentiating attributes of Figure 12.
type TimeAttributes struct {
	AppendOnly               bool
	ApplicationIndependent   bool
	RepresentationNotReality bool // true: models the representation; false: reality
}

// Attributes returns Figure 12's row for the time kind.
func (k TimeKind) Attributes() TimeAttributes {
	switch k {
	case TransactionTime:
		return TimeAttributes{AppendOnly: true, ApplicationIndependent: true, RepresentationNotReality: true}
	case ValidTime:
		return TimeAttributes{AppendOnly: false, ApplicationIndependent: true, RepresentationNotReality: false}
	default:
		return TimeAttributes{AppendOnly: false, ApplicationIndependent: false, RepresentationNotReality: false}
	}
}

// Capabilities classifies one database kind: the two orthogonal criteria of
// Figure 10 plus the update discipline they imply.
type Capabilities struct {
	Kind       tdb.Kind
	Rollback   bool // can answer "as of" queries (transaction time)
	Historical bool // can answer valid-time queries
	AppendOnly bool // committed information is never lost
}

// TimeKinds returns Figure 11's row: which kinds of time the database kind
// carries. Every kind can carry user-defined time, since user-defined time
// is ordinary data; the paper's Figure 11 marks it only for the kinds whose
// discussion introduces it (temporal databases), so that column is exposed
// separately.
func (c Capabilities) TimeKinds() (transaction, valid bool) {
	return c.Rollback, c.Historical
}

// Expected returns the capabilities the taxonomy predicts for a kind.
func Expected(k tdb.Kind) Capabilities {
	return Capabilities{
		Kind:       k,
		Rollback:   k.SupportsRollback(),
		Historical: k.SupportsHistorical(),
		AppendOnly: k.AppendOnly(),
	}
}

// Probe derives a kind's capabilities behaviorally: it builds a relation of
// that kind in a scratch database, runs a scripted history containing a
// change and a correction, and then observes which queries succeed and
// whether superseded information survived. The result should equal
// Expected(k) — TestProbeMatchesTaxonomy pins that.
func Probe(k tdb.Kind) (Capabilities, error) {
	caps := Capabilities{Kind: k}
	clock := temporal.NewLogicalClock(1000)
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		return caps, err
	}
	defer db.Close()
	sch, err := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	if err != nil {
		return caps, err
	}
	if sch, err = sch.WithKey("name"); err != nil {
		return caps, err
	}
	rel, err := db.CreateRelation("probe", k, sch)
	if err != nil {
		return caps, err
	}

	tup := func(rank string) tdb.Tuple { return tdb.NewTuple(tdb.String("probe"), tdb.String(rank)) }
	key := tdb.Key(tdb.String("probe"))

	// A history with a change: first "old", later corrected to "new".
	write := func(rank string, from temporal.Chronon) error {
		if k.SupportsHistorical() {
			return rel.Assert(tup(rank), from, temporal.Forever)
		}
		if err := rel.Insert(tup(rank)); err != nil {
			return rel.Replace(key, tup(rank))
		}
		return nil
	}
	if err := write("old", 10); err != nil {
		return caps, err
	}
	between := clock.Now()
	clock.Advance(100)
	if err := write("new", 20); err != nil {
		return caps, err
	}

	// Rollback: can we still see "old" as of the instant between writes?
	if res, err := rel.Query().AsOf(between).Run(); err == nil {
		caps.Rollback = res.Len() == 1 && res.Tuples()[0][1].Str() == "old"
	}

	// Historical: can we ask what held at a past valid instant (and get
	// the retroactively recorded answer)?
	if res, err := rel.Query().At(15).Run(); err == nil {
		// "new" was asserted from 20 on, so instant 15 should still answer
		// "old" — demonstrating genuine valid-time semantics.
		caps.Historical = res.Len() == 1 && res.Tuples()[0][1].Str() == "old"
	}

	// Append-only: did the superseded belief survive anywhere in storage?
	for _, v := range rel.Versions() {
		if v.Data[1].Str() == "old" && !v.Current() {
			caps.AppendOnly = true
		}
	}
	// Static and historical stores overwrite in place; for historical the
	// "old" version survives as current data (its valid period was cut),
	// which is not append-only-ness: append-only means the *superseded
	// database state* is recoverable, tested above via non-current
	// versions.
	return caps, nil
}

// AllKinds lists the four database kinds in the paper's order.
var AllKinds = []tdb.Kind{tdb.Static, tdb.StaticRollback, tdb.Historical, tdb.Temporal}
