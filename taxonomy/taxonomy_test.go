package taxonomy

import (
	"strings"
	"testing"

	"tdb"
)

// The central claim: behavioral probing of the four live store kinds
// reproduces exactly the capabilities the taxonomy predicts (Figures 10-12
// derived, not transcribed).
func TestProbeMatchesTaxonomy(t *testing.T) {
	for _, k := range AllKinds {
		got, err := Probe(k)
		if err != nil {
			t.Fatalf("Probe(%v): %v", k, err)
		}
		want := Expected(k)
		if got != want {
			t.Errorf("Probe(%v) = %+v, want %+v", k, got, want)
		}
	}
}

func TestExpectedMatrix(t *testing.T) {
	cases := map[tdb.Kind]Capabilities{
		tdb.Static:         {Kind: tdb.Static, Rollback: false, Historical: false, AppendOnly: false},
		tdb.StaticRollback: {Kind: tdb.StaticRollback, Rollback: true, Historical: false, AppendOnly: true},
		tdb.Historical:     {Kind: tdb.Historical, Rollback: false, Historical: true, AppendOnly: false},
		tdb.Temporal:       {Kind: tdb.Temporal, Rollback: true, Historical: true, AppendOnly: true},
	}
	for k, want := range cases {
		if got := Expected(k); got != want {
			t.Errorf("Expected(%v) = %+v, want %+v", k, got, want)
		}
	}
}

func TestTimeKindAttributesFigure12(t *testing.T) {
	// Figure 12's exact contents.
	cases := map[TimeKind]TimeAttributes{
		TransactionTime: {AppendOnly: true, ApplicationIndependent: true, RepresentationNotReality: true},
		ValidTime:       {AppendOnly: false, ApplicationIndependent: true, RepresentationNotReality: false},
		UserDefinedTime: {AppendOnly: false, ApplicationIndependent: false, RepresentationNotReality: false},
	}
	for k, want := range cases {
		if got := k.Attributes(); got != want {
			t.Errorf("%v.Attributes() = %+v, want %+v", k, got, want)
		}
	}
	if TransactionTime.String() != "Transaction" || UserDefinedTime.String() != "User-defined" {
		t.Error("time kind names wrong")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		tr, va bool
		want   string
	}{
		{false, false, "static"},
		{true, false, "static rollback"},
		{false, true, "historical"},
		{true, true, "temporal"},
	}
	for _, c := range cases {
		if got := Classify(c.tr, c.va); got != c.want {
			t.Errorf("Classify(%v, %v) = %q, want %q", c.tr, c.va, got, c.want)
		}
	}
}

func TestFigure13Contents(t *testing.T) {
	if len(Figure13) != 17 {
		t.Fatalf("Figure 13 has %d systems, paper lists 17", len(Figure13))
	}
	// TQuel is the only entry supporting all three kinds of time.
	all3 := 0
	for _, s := range Figure13 {
		if s.Transaction && s.Valid && s.UserDefined {
			all3++
			if s.System != "TQuel" {
				t.Errorf("unexpected full-support system %q", s.System)
			}
		}
	}
	if all3 != 1 {
		t.Errorf("%d systems support all three times", all3)
	}
	// TRM is the only (bitemporal) temporal database besides TQuel.
	for _, s := range Figure13 {
		if Classify(s.Transaction, s.Valid) == "temporal" &&
			s.System != "TRM" && s.System != "TQuel" {
			t.Errorf("unexpected temporal system %q", s.System)
		}
	}
}

func TestRenderedFiguresContainKeyFacts(t *testing.T) {
	var caps []Capabilities
	for _, k := range AllKinds {
		c, err := Probe(k)
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, c)
	}
	f10 := RenderFigure10(caps)
	for _, want := range []string{"Static Rollback", "Historical", "Temporal", "No Rollback"} {
		if !strings.Contains(f10, want) {
			t.Errorf("Figure 10 missing %q:\n%s", want, f10)
		}
	}
	f11 := RenderFigure11(caps)
	if !strings.Contains(f11, "User-defined") {
		t.Errorf("Figure 11 missing user-defined column:\n%s", f11)
	}
	f12 := RenderFigure12()
	for _, want := range []string{"Transaction", "Representation", "Reality", "Yes", "No"} {
		if !strings.Contains(f12, want) {
			t.Errorf("Figure 12 missing %q:\n%s", want, f12)
		}
	}
	f13 := RenderFigure13()
	for _, want := range []string{"TQuel", "SWALLOW", "GemStone", "LEGOL 2.0"} {
		if !strings.Contains(f13, want) {
			t.Errorf("Figure 13 missing %q:\n%s", want, f13)
		}
	}
	f1 := RenderFigure1()
	for _, want := range []string{"Registration", "Effective", "(2) Can make corrections only"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure 1 missing %q:\n%s", want, f1)
		}
	}
}

func TestFigure10CellsUnique(t *testing.T) {
	var caps []Capabilities
	for _, k := range AllKinds {
		caps = append(caps, Expected(k))
	}
	seen := map[[2]bool]tdb.Kind{}
	for _, c := range caps {
		cell := [2]bool{c.Historical, c.Rollback}
		if prev, dup := seen[cell]; dup {
			t.Errorf("kinds %v and %v occupy the same cell", prev, c.Kind)
		}
		seen[cell] = c.Kind
	}
	if len(seen) != 4 {
		t.Errorf("the four kinds must fill all four cells, filled %d", len(seen))
	}
}
