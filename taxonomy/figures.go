package taxonomy

import (
	"fmt"
	"strings"

	"tdb/internal/pretty"
)

func yn(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func check(b bool) string {
	if b {
		return "v"
	}
	return ""
}

// RenderFigure1 reproduces Figure 1, "Types of Time".
func RenderFigure1() string {
	tbl := pretty.Table{
		Title:   "Figure 1 : Types of Time",
		Headers: []string{"Reference", "Terminology", "Append-Only", "Application Independent", "Representation vs. Reality"},
	}
	for _, r := range Figure1 {
		tbl.Rows = append(tbl.Rows, []string{
			r.Reference, r.Terminology, r.AppendOnly, r.AppIndependent, r.Representation,
		})
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	b.WriteString("Notes:\n")
	for _, n := range Figure1Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// RenderFigure10 reproduces Figure 10, "Types of Databases", from probed
// (or, on probe failure, predicted) capabilities.
func RenderFigure10(caps []Capabilities) string {
	cell := func(historical, rollback bool) string {
		for _, c := range caps {
			if c.Historical == historical && c.Rollback == rollback {
				return titleCase(c.Kind.String())
			}
		}
		return "?"
	}
	tbl := pretty.Table{
		Title:   "Figure 10 : Types of Databases",
		Headers: []string{"", "No Rollback", "Rollback"},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"Static Queries", cell(false, false), cell(false, true)},
		[]string{"Historical Queries", cell(true, false), cell(true, true)},
	)
	return tbl.String()
}

// RenderFigure11 reproduces Figure 11, "Attributes of the New Kinds of
// Databases": which time kinds each database kind carries. Following the
// paper, user-defined time is marked for the kinds whose definition
// includes it (historical and temporal databases "also incorporate
// user-defined time").
func RenderFigure11(caps []Capabilities) string {
	tbl := pretty.Table{
		Title:   "Figure 11 : Attributes of the New Kinds of Databases",
		Headers: []string{"", "Transaction", "Valid", "User-defined"},
	}
	for _, c := range caps {
		tr, va := c.TimeKinds()
		tbl.Rows = append(tbl.Rows, []string{
			titleCase(c.Kind.String()), check(tr), check(va), check(va),
		})
	}
	return tbl.String()
}

// RenderFigure12 reproduces Figure 12, "Attributes of the New Kinds of
// Time".
func RenderFigure12() string {
	tbl := pretty.Table{
		Title:   "Figure 12 : Attributes of the New Kinds of Time",
		Headers: []string{"Terminology", "Append-Only", "Application Independent", "Representation vs. Reality"},
	}
	for _, k := range []TimeKind{TransactionTime, ValidTime, UserDefinedTime} {
		a := k.Attributes()
		rr := "Reality"
		if a.RepresentationNotReality {
			rr = "Representation"
		}
		tbl.Rows = append(tbl.Rows, []string{
			k.String(), yn(a.AppendOnly), yn(a.ApplicationIndependent), rr,
		})
	}
	return tbl.String()
}

// RenderFigure13 reproduces Figure 13, "Time Support in Existing or
// Proposed Systems".
func RenderFigure13() string {
	tbl := pretty.Table{
		Title:   "Figure 13 : Time Support in Existing or Proposed Systems",
		Headers: []string{"Reference", "System or Language", "Transaction Time", "Valid Time", "User-defined Time"},
	}
	for _, s := range Figure13 {
		tbl.Rows = append(tbl.Rows, []string{
			s.Reference, s.System, check(s.Transaction), check(s.Valid), check(s.UserDefined),
		})
	}
	return tbl.String()
}

func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
