package tdb

import (
	"errors"
	"fmt"

	"tdb/internal/catalog"
	"tdb/internal/core"
)

// The exported error sentinels. Every error returned by the tdb facade
// matches exactly one of these under errors.Is; internal-package errors are
// wrapped, never returned bare, so callers program against this list alone.
var (
	// ErrClosed reports use of a closed database.
	ErrClosed = errors.New("tdb: database closed")
	// ErrRelationNotFound reports a reference to an unknown relation.
	ErrRelationNotFound = errors.New("tdb: relation not found")
	// ErrRelationExists reports creating a relation whose name is taken.
	ErrRelationExists = errors.New("tdb: relation already exists")
	// ErrCorrupt reports durable state that recovery could not prove
	// consistent: a checksum-failed snapshot with no usable fallback, or a
	// snapshot/log pair whose checkpoint epochs do not line up. Open fails
	// with ErrCorrupt rather than ever loading a silently divergent state.
	ErrCorrupt = errors.New("tdb: data corrupt")
	// ErrBusy reports a server refusing work because it is at its connection
	// cap or shutting down. Retryable: the client's Do method backs off and
	// retries it automatically.
	ErrBusy = errors.New("tdb: server busy")
	// ErrKindMismatch reports using a relation through operations its kind
	// does not support — the taxonomy's boundaries, enforced.
	ErrKindMismatch = catalog.ErrKindMismatch
	// ErrDuplicateKey re-exports the store-level duplicate key error.
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrNoSuchTuple re-exports the store-level missing tuple error.
	ErrNoSuchTuple = core.ErrNoSuchTuple
	// ErrEmptyValidPeriod re-exports the store-level empty period error.
	ErrEmptyValidPeriod = core.ErrEmptyValidPeriod
	// ErrNoRollback reports an as-of query on a kind without transaction
	// time.
	ErrNoRollback = errors.New("tdb: relation kind does not support rollback (as of)")
	// ErrNoValidTime reports a valid-time query on a kind without it.
	ErrNoValidTime = errors.New("tdb: relation kind does not support historical queries")
	// ErrReadOnly reports a mutation against a database opened as a
	// replication follower (Options.ReadOnly). Followers advance only by
	// applying their primary's stream; route writes to the primary.
	ErrReadOnly = errors.New("tdb: database is read-only (replication follower)")
)

// Deprecated aliases kept for source compatibility with earlier releases.
var (
	// ErrNotFound is ErrRelationNotFound.
	ErrNotFound = ErrRelationNotFound
	// ErrExists is ErrRelationExists.
	ErrExists = ErrRelationExists
)

// wrapErr lifts internal-package errors onto the exported sentinels while
// keeping the original chain intact: errors.Is matches the tdb sentinel and
// the internal cause both.
func wrapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, catalog.ErrNotFound):
		return fmt.Errorf("%w: %w", ErrRelationNotFound, err)
	case errors.Is(err, catalog.ErrExists):
		return fmt.Errorf("%w: %w", ErrRelationExists, err)
	}
	return err
}
