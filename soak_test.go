package tdb_test

import (
	"errors"
	"testing"

	"tdb"
	"tdb/internal/dataset"
	"tdb/temporal"
)

// TestScaleSoak loads a larger generated history (1000 entities × 20
// versions) through the facade into temporal, historical and rollback
// relations and cross-checks the representations against each other at many
// probe points — the taxonomy's semantic relationships, validated at scale.
// Skipped under -short.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := dataset.DefaultConfig()
	cfg.Entities = 1000
	cfg.VersionsPerEntity = 20
	events := dataset.History(cfg)

	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sch := schemaT(t)
	for _, name := range []string{"temporal", "historical", "rollback"} {
		kind := map[string]tdb.Kind{
			"temporal": tdb.Temporal, "historical": tdb.Historical, "rollback": tdb.StaticRollback,
		}[name]
		if _, err := db.CreateRelation(name, kind, sch); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range events {
		e := e
		if err := db.UpdateAt(e.Commit, func(tx *tdb.Tx) error {
			tup := tdb.NewTuple(tdb.String(e.Name), tdb.String(e.Rank))
			key := tdb.Key(tdb.String(e.Name))
			tr, _ := tx.Rel("temporal")
			hr, _ := tx.Rel("historical")
			rr, _ := tx.Rel("rollback")
			if e.Assert {
				if err := tr.Assert(tup, e.Valid.From, e.Valid.To); err != nil {
					return err
				}
				if err := hr.Assert(tup, e.Valid.From, e.Valid.To); err != nil {
					return err
				}
				if err := rr.Insert(tup); errors.Is(err, tdb.ErrDuplicateKey) {
					return rr.Replace(key, tup)
				} else if err != nil {
					return err
				}
				return nil
			}
			if err := tr.Retract(key, e.Valid.From, e.Valid.To); err != nil &&
				!errors.Is(err, tdb.ErrNoSuchTuple) {
				return err
			}
			if err := hr.Retract(key, e.Valid.From, e.Valid.To); err != nil &&
				!errors.Is(err, tdb.ErrNoSuchTuple) {
				return err
			}
			if err := rr.Delete(key); err != nil && !errors.Is(err, tdb.ErrNoSuchTuple) {
				return err
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	tr, _ := db.Relation("temporal")
	hr, _ := db.Relation("historical")
	rr, _ := db.Relation("rollback")

	t.Logf("temporal versions: %d (events: %d)", tr.VersionCount(), len(events))

	// Compare slice *contents*: the temporal store fragments periods at
	// correction boundaries while the historical store coalesces on write,
	// so interval bounds may differ even though every time slice agrees.
	asSet := func(res *tdb.Result) map[string]bool {
		out := map[string]bool{}
		for _, tup := range res.Tuples() {
			out[tup.String()] = true
		}
		return out
	}
	sameSet := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}

	// Relationship 1: the temporal relation's current belief equals the
	// historical relation, at every probed valid instant.
	for probe := cfg.Start; probe < cfg.Start.Add(cfg.Step*int64(len(events))); probe = probe.Add(cfg.Step * 997) {
		a, err := tr.Query().At(probe).Coalesce().Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := hr.Query().At(probe).Coalesce().Run()
		if err != nil {
			t.Fatal(err)
		}
		if !sameSet(asSet(a), asSet(b)) {
			t.Fatalf("temporal vs historical diverge at %v: %d vs %d rows",
				probe, a.Len(), b.Len())
		}
	}

	// Relationship 2: the rollback relation's state as of each probed
	// commit equals the key->latest-rank reduction of the event stream.
	commits := dataset.Commits(events)
	for i := 101; i < len(commits); i += 1013 {
		at := commits[i]
		want := map[string]string{}
		for _, e := range events {
			if e.Commit > at {
				break
			}
			if e.Assert {
				want[e.Name] = e.Rank
			} else {
				delete(want, e.Name)
			}
		}
		res, err := rr.Query().AsOf(at).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != len(want) {
			t.Fatalf("rollback as of %v: %d rows, want %d", at, res.Len(), len(want))
		}
		for _, tup := range res.Tuples() {
			if want[tup[0].Str()] != tup[1].Str() {
				t.Fatalf("rollback as of %v: %v, want rank %q", at, tup, want[tup[0].Str()])
			}
		}
	}
}
