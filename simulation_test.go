package tdb

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"tdb/temporal"
)

// TestDurabilitySimulation is a randomized end-to-end exerciser of the
// durability machinery: random DDL and DML across all relation kinds,
// interleaved with transaction aborts, checkpoints, and close/reopen
// cycles. After every reopen, the database must be observably identical to
// the moment before close. Several seeds; each runs hundreds of steps.
func TestDurabilitySimulation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDurabilitySim(t, seed)
		})
	}
}

func runDurabilitySim(t *testing.T, seed int64) {
	r := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "sim.wal")
	clock := temporal.NewTickingClock(1000)
	open := func() *DB {
		t.Helper()
		db, err := Open(path, Options{Clock: clock})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	db := open()
	defer func() { db.Close() }()

	kinds := []Kind{Static, StaticRollback, Historical, Temporal}
	names := []string{"alpha", "beta", "gamma"}
	entities := []string{"a", "b", "c", "d"}
	created := map[string]Kind{}

	randomRelation := func() (string, Kind, bool) {
		n := names[r.Intn(len(names))]
		k, ok := created[n]
		return n, k, ok
	}

	for step := 0; step < 400; step++ {
		switch op := r.Intn(20); {
		case op == 0: // create
			n := names[r.Intn(len(names))]
			if _, ok := created[n]; ok {
				break
			}
			k := kinds[r.Intn(len(kinds))]
			if _, err := db.CreateRelation(n, k, facultySchema(t)); err != nil {
				t.Fatalf("step %d create: %v", step, err)
			}
			created[n] = k
		case op == 1: // drop
			n, _, ok := randomRelation()
			if !ok {
				break
			}
			if err := db.DropRelation(n); err != nil {
				t.Fatalf("step %d drop: %v", step, err)
			}
			delete(created, n)
		case op == 2: // checkpoint
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}
		case op < 5: // close + reopen, comparing digests
			before := stateDigest(t, db)
			if err := db.Close(); err != nil {
				t.Fatalf("step %d close: %v", step, err)
			}
			db = open()
			after := stateDigest(t, db)
			if !digestsEqual(before, after) {
				t.Fatalf("step %d: reopen changed state:\nbefore %v\nafter  %v",
					step, before, after)
			}
		case op < 8: // multi-op transaction, randomly aborted
			n, k, ok := randomRelation()
			if !ok {
				break
			}
			abort := r.Intn(3) == 0
			var beforeAbort []string
			if abort {
				beforeAbort = stateDigest(t, db)
			}
			boom := errors.New("abort")
			err := db.Update(func(tx *Tx) error {
				h, err := tx.Rel(n)
				if err != nil {
					return err
				}
				for i := 0; i < 1+r.Intn(3); i++ {
					if err := simMutate(r, h, k, entities, tx.At()); err != nil {
						return err
					}
				}
				if abort {
					return boom
				}
				return nil
			})
			if abort {
				if !errors.Is(err, boom) {
					t.Fatalf("step %d: abort error lost: %v", step, err)
				}
				if got := stateDigest(t, db); !digestsEqual(beforeAbort, got) {
					t.Fatalf("step %d: abort leaked state", step)
				}
			} else if err != nil {
				t.Fatalf("step %d txn: %v", step, err)
			}
		default: // single mutation through the convenience methods
			n, k, ok := randomRelation()
			if !ok {
				break
			}
			if err := db.Update(func(tx *Tx) error {
				h, err := tx.Rel(n)
				if err != nil {
					return err
				}
				return simMutate(r, h, k, entities, tx.At())
			}); err != nil {
				t.Fatalf("step %d mutate: %v", step, err)
			}
		}
	}

	// Final reopen sanity.
	before := stateDigest(t, db)
	db.Close()
	db = open()
	if got := stateDigest(t, db); !digestsEqual(before, got) {
		t.Fatal("final reopen changed state")
	}
}

// simMutate applies one random, always-legal mutation for the kind
// (errors from benign races like duplicate keys are absorbed by choosing
// the complementary operation).
func simMutate(r *rand.Rand, h *TxRel, k Kind, entities []string, at temporal.Chronon) error {
	name := entities[r.Intn(len(entities))]
	rank := fmt.Sprint(r.Intn(5))
	tup := fac(name, rank)
	key := Key(String(name))
	if !k.SupportsHistorical() {
		switch r.Intn(3) {
		case 0:
			if err := h.Insert(tup); errors.Is(err, ErrDuplicateKey) {
				return h.Replace(key, tup)
			} else if err != nil {
				return err
			}
			return nil
		case 1:
			if err := h.Delete(key); errors.Is(err, ErrNoSuchTuple) {
				return nil
			} else if err != nil {
				return err
			}
			return nil
		default:
			if err := h.Replace(key, tup); errors.Is(err, ErrNoSuchTuple) {
				return h.Insert(tup)
			} else if err != nil {
				return err
			}
			return nil
		}
	}
	from := at.Add(-int64(r.Intn(5000)))
	to := from.Add(int64(1 + r.Intn(10000)))
	if r.Intn(4) > 0 {
		return h.Assert(tup, from, to)
	}
	if err := h.Retract(key, from, to); errors.Is(err, ErrNoSuchTuple) {
		return nil
	} else if err != nil {
		return err
	}
	return nil
}
